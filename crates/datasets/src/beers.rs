//! Beers generator: 2,410 x 11, error rate 0.16, MV + FI + VAD.
//!
//! The paper's examples (§5.1): ounces `'12.0 oz'` rather than `'12.0'`,
//! ABV `'0.061%'` rather than `'0.061'`, city/state dependency
//! violations, and `NaN` missing values in state.

use crate::corrupt::{missing_value, ErrorKind, Injector};
use crate::vocab;
use crate::{Dataset, GenConfig};
use etsb_table::{Table, TableError};
use rand::Rng;

const COLUMNS: [&str; 11] = [
    "index",
    "id",
    "beer_name",
    "style",
    "ounces",
    "abv",
    "ibu",
    "brewery_id",
    "brewery_name",
    "city",
    "state",
];

pub(crate) fn generate(cfg: &GenConfig) -> Result<(Table, Table), TableError> {
    let mut rng = cfg.rng(Dataset::Beers);
    let n_rows = cfg.rows(Dataset::Beers.paper_rows());

    let mut clean = Table::with_columns(&COLUMNS);
    for i in 0..n_rows {
        let (city, state) = *vocab::pick(&mut rng, vocab::CITY_STATE);
        let beer_name = format!(
            "{} {}",
            vocab::pick(&mut rng, vocab::BEER_WORDS),
            vocab::pick(&mut rng, vocab::BEER_NOUNS)
        );
        let brewery_name = format!(
            "{} {}",
            vocab::pick(&mut rng, vocab::BREWERY_WORDS),
            vocab::pick(&mut rng, vocab::BREWERY_SUFFIXES)
        );
        let ounces = *vocab::pick(&mut rng, &["12.0", "16.0", "24.0", "32.0"]);
        let abv = format!("0.0{}", rng.gen_range(30..99));
        let ibu = if rng.gen_bool(0.4) {
            "NaN".to_string() // IBU is genuinely missing for many beers.
        } else {
            format!("{}.0", rng.gen_range(5..120))
        };
        clean.push_row(vec![
            i.to_string(),
            (1000 + i).to_string(),
            beer_name,
            vocab::pick(&mut rng, vocab::BEER_STYLES).to_string(),
            ounces.to_string(),
            abv,
            ibu,
            rng.gen_range(1..=60).to_string(),
            brewery_name,
            city.to_string(),
            state.to_string(),
        ]);
    }

    let mut dirty = clean.clone();
    let col = |name: &str| {
        COLUMNS
            .iter()
            .position(|c| *c == name)
            .ok_or_else(|| TableError::UnknownColumn(name.to_string()))
    };
    let (c_ounces, c_abv, c_state, c_ibu, c_city) = (
        col("ounces")?,
        col("abv")?,
        col("state")?,
        col("ibu")?,
        col("city")?,
    );

    let mix = [
        (ErrorKind::FormattingIssue, 0.70),
        (ErrorKind::MissingValue, 0.20),
        (ErrorKind::ViolatedDependency, 0.10),
    ];
    Injector::new(
        n_rows * COLUMNS.len(),
        Dataset::Beers.paper_error_rate(),
        &mix,
        &mut rng,
    )
    .run(&mut dirty, |kind, _r, c, old, rng| match kind {
        ErrorKind::FormattingIssue => {
            if c == c_ounces {
                Some(format!("{old} oz"))
            } else if c == c_abv {
                Some(format!("{old}%"))
            } else if c == c_ibu && old != "NaN" {
                // '45.0' → '45' (dropped decimal).
                old.strip_suffix(".0").map(str::to_string)
            } else {
                None
            }
        }
        ErrorKind::MissingValue => {
            if (c == c_state || c == c_city || c == c_ibu) && old != "NaN" {
                Some(missing_value(rng))
            } else {
                None
            }
        }
        ErrorKind::ViolatedDependency => {
            if c == c_state {
                // A valid-looking but wrong state for the city.
                let (_, wrong) = vocab::pick(rng, vocab::CITY_STATE);
                (*wrong != old).then(|| wrong.to_string())
            } else {
                None
            }
        }
        _ => None,
    });
    Ok((dirty, clean))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_table::CellFrame;

    #[test]
    fn formatting_errors_present() {
        let cfg = GenConfig {
            scale: 0.1,
            seed: 3,
        };
        let (dirty, clean) = generate(&cfg).expect("generate");
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        let oz_errors = frame
            .cells()
            .iter()
            .filter(|c| c.label && c.value_x.ends_with(" oz"))
            .count();
        assert!(oz_errors > 0, "expected ' oz' formatting errors");
        let pct_errors = frame
            .cells()
            .iter()
            .filter(|c| c.label && c.value_x.ends_with('%'))
            .count();
        assert!(pct_errors > 0, "expected '%' formatting errors");
    }

    #[test]
    fn clean_table_is_consistent_on_city_state() {
        let cfg = GenConfig {
            scale: 0.05,
            seed: 4,
        };
        let (_, clean) = generate(&cfg).expect("generate");
        for row in clean.iter_rows() {
            let city = &row[9];
            let state = &row[10];
            assert!(
                vocab::CITY_STATE
                    .iter()
                    .any(|(c, s)| c == city && s == state),
                "clean violates city/state FD: {city}/{state}"
            );
        }
    }
}
