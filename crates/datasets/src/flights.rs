//! Flights generator: 2,376 x 7, error rate 0.30, MV + FI + VAD.
//!
//! The paper's hardest dataset (§5.5): the same flight is reported by many
//! sources, and a large share of the errors are *plausible-looking time
//! variations* ('2:26 p.m.' where the truth is '2:46 p.m.') that a
//! character-level model cannot distinguish from correct values — which
//! is exactly why the paper's recall tops out around 0.68 here. The
//! generator therefore makes VAD the dominant error kind.

use crate::corrupt::{ErrorKind, Injector};
use crate::vocab;
use crate::{Dataset, GenConfig};
use etsb_table::Table;
use rand::rngs::StdRng;
use rand::Rng;

const COLUMNS: [&str; 7] = [
    "tuple_id",
    "src",
    "flight",
    "sched_dep_time",
    "act_dep_time",
    "sched_arr_time",
    "act_arr_time",
];

fn format_time(minutes: u32) -> String {
    let h24 = (minutes / 60) % 24;
    let m = minutes % 60;
    let (h12, suffix) = match h24 {
        0 => (12, "a.m."),
        1..=11 => (h24, "a.m."),
        12 => (12, "p.m."),
        _ => (h24 - 12, "p.m."),
    };
    format!("{h12}:{m:02} {suffix}")
}

/// Shift a formatted time by a few minutes: the canonical invisible error.
fn perturb_time(value: &str, rng: &mut StdRng) -> Option<String> {
    let (clock, suffix) = value.split_once(' ')?;
    let (h, m) = clock.split_once(':')?;
    let h: u32 = h.parse().ok()?;
    let m: u32 = m.parse().ok()?;
    let total = h * 60 + m;
    let delta = rng.gen_range(1..=40);
    let shifted = if rng.gen_bool(0.5) {
        total + delta
    } else {
        total.saturating_sub(delta)
    };
    let nh = (shifted / 60).clamp(1, 12);
    let nm = shifted % 60;
    let candidate = format!("{nh}:{nm:02} {suffix}");
    (candidate != value).then_some(candidate)
}

pub(crate) fn generate(cfg: &GenConfig) -> (Table, Table) {
    let mut rng = cfg.rng(Dataset::Flights);
    let n_rows = cfg.rows(Dataset::Flights.paper_rows());

    // A pool of true flights; each table row is one (source, flight)
    // observation, so the same flight appears under several sources,
    // mirroring the original data-fusion dataset.
    let n_flights = (n_rows / 6).max(5);
    struct Flight {
        name: String,
        sched_dep: u32,
        act_dep: u32,
        sched_arr: u32,
        act_arr: u32,
    }
    let flights: Vec<Flight> = (0..n_flights)
        .map(|_| {
            let airline = vocab::pick(&mut rng, vocab::AIRLINES);
            let from = vocab::pick(&mut rng, vocab::AIRPORTS);
            let mut to = vocab::pick(&mut rng, vocab::AIRPORTS);
            while to == from {
                to = vocab::pick(&mut rng, vocab::AIRPORTS);
            }
            let number = rng.gen_range(100..3000);
            let sched_dep = rng.gen_range(5 * 60..22 * 60);
            let act_dep = sched_dep + rng.gen_range(0..25);
            let sched_arr = sched_dep + rng.gen_range(90..360);
            let act_arr = sched_arr + rng.gen_range(0..40);
            Flight {
                name: format!("{airline}-{number}-{from}-{to}"),
                sched_dep,
                act_dep,
                sched_arr,
                act_arr,
            }
        })
        .collect();

    let mut clean = Table::with_columns(&COLUMNS);
    for i in 0..n_rows {
        let f = &flights[i % n_flights];
        let src = vocab::pick(&mut rng, vocab::FLIGHT_SOURCES);
        clean.push_row(vec![
            i.to_string(),
            src.to_string(),
            f.name.clone(),
            format_time(f.sched_dep),
            format_time(f.act_dep),
            format_time(f.sched_arr),
            format_time(f.act_arr),
        ]);
    }

    let mut dirty = clean.clone();
    let time_cols = 3..7usize;

    let mix = [
        (ErrorKind::ViolatedDependency, 0.40),
        (ErrorKind::FormattingIssue, 0.30),
        (ErrorKind::MissingValue, 0.30),
    ];
    Injector::new(
        n_rows * COLUMNS.len(),
        Dataset::Flights.paper_error_rate(),
        &mix,
        &mut rng,
    )
    .run(&mut dirty, |kind, _r, c, old, rng| {
        if !time_cols.contains(&c) {
            return None;
        }
        match kind {
            // Source disagreement: a perfectly plausible time that is
            // simply wrong — invisible to a character-level detector.
            ErrorKind::ViolatedDependency => perturb_time(old, rng),
            // '12/02/2011 6:55 a.m.' rather than '6:55 a.m.' — a very
            // visible surface error.
            ErrorKind::FormattingIssue => {
                let month = rng.gen_range(1..=12);
                let day = rng.gen_range(1..=28);
                Some(format!("{month:02}/{day:02}/2011 {old}"))
            }
            // Flights MVs are blanks ('' rather than '3:31 p.m.').
            ErrorKind::MissingValue => Some(String::new()),
            _ => None,
        }
    });
    (dirty, clean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_table::CellFrame;
    use rand::SeedableRng;

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(0), "12:00 a.m.");
        assert_eq!(format_time(6 * 60 + 55), "6:55 a.m.");
        assert_eq!(format_time(12 * 60), "12:00 p.m.");
        assert_eq!(format_time(14 * 60 + 46), "2:46 p.m.");
    }

    #[test]
    fn perturb_changes_but_stays_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let out = perturb_time("2:46 p.m.", &mut rng).unwrap();
            assert_ne!(out, "2:46 p.m.");
            assert!(out.ends_with("p.m."), "suffix preserved: {out}");
            assert!(out.contains(':'));
        }
    }

    #[test]
    fn vad_errors_look_like_valid_times() {
        let cfg = GenConfig {
            scale: 0.05,
            seed: 5,
        };
        let (dirty, clean) = generate(&cfg);
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        // Some errors must be plausible times (no date prefix, not empty).
        let invisible = frame
            .cells()
            .iter()
            .filter(|c| {
                c.label
                    && !c.value_x.is_empty()
                    && !c.value_x.contains('/')
                    && (c.value_x.ends_with("a.m.") || c.value_x.ends_with("p.m."))
            })
            .count();
        assert!(invisible > 0, "expected invisible VAD time errors");
    }

    #[test]
    fn same_flight_reported_by_multiple_sources() {
        let cfg = GenConfig {
            scale: 0.05,
            seed: 6,
        };
        let (_, clean) = generate(&cfg);
        let first_flight = clean.cell(0, 2);
        let repeats = clean.iter_rows().filter(|r| r[2] == first_flight).count();
        assert!(repeats >= 2, "flights should repeat across sources");
    }
}
