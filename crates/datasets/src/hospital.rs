//! Hospital generator: 1,000 x 20, error rate 0.03, T + VAD.
//!
//! §5.5: "Detecting errors in the Hospital dataset is quite
//! straightforward because the errors are marked with 'x'
//! (e.g. 'hexrt fxilure')" — so the generator injects mostly `x` typos,
//! plus a small share of repeated-information conflicts (VAD).

use crate::corrupt::{x_typo, ErrorKind, Injector};
use crate::vocab;
use crate::{Dataset, GenConfig};
use etsb_table::Table;
use rand::Rng;

const COLUMNS: [&str; 20] = [
    "provider_number",
    "hospital_name",
    "address1",
    "address2",
    "address3",
    "city",
    "state",
    "zip",
    "county",
    "phone",
    "hospital_type",
    "hospital_owner",
    "emergency_service",
    "condition",
    "measure_code",
    "measure_name",
    "score",
    "sample",
    "state_avg",
    "record_id",
];

pub(crate) fn generate(cfg: &GenConfig) -> (Table, Table) {
    let mut rng = cfg.rng(Dataset::Hospital);
    let n_rows = cfg.rows(Dataset::Hospital.paper_rows());

    // Hospitals repeat across rows (one row per hospital x measure).
    let n_hospitals = vocab::HOSPITAL_NAMES.len();
    let hospital_meta: Vec<(String, String, String, String)> = (0..n_hospitals)
        .map(|i| {
            let (city, state) = vocab::CITY_STATE[i % vocab::CITY_STATE.len()];
            let zip = format!("{:05}", 10000 + i * 137);
            let phone = format!("{}5551{:03}", 200 + i, i);
            (city.to_lowercase(), state.to_lowercase(), zip, phone)
        })
        .collect();

    let mut clean = Table::with_columns(&COLUMNS);
    for i in 0..n_rows {
        let h = i % n_hospitals;
        let m = (i / n_hospitals) % vocab::HOSPITAL_MEASURES.len();
        let (city, state, zip, phone) = &hospital_meta[h];
        let condition = vocab::HOSPITAL_CONDITIONS[m % vocab::HOSPITAL_CONDITIONS.len()];
        clean.push_row(vec![
            format!("{:05}", 10001 + h),
            vocab::HOSPITAL_NAMES[h].to_string(),
            format!("{} main street", 100 + h * 7),
            String::new(),
            String::new(),
            city.clone(),
            state.clone(),
            zip.clone(),
            format!("county {}", h % 12),
            phone.clone(),
            "acute care hospitals".to_string(),
            "voluntary non-profit - private".to_string(),
            if h.is_multiple_of(3) {
                "yes".to_string()
            } else {
                "no".to_string()
            },
            condition.to_string(),
            format!("{}-{}", condition.split(' ').next().unwrap_or("m"), m + 1),
            vocab::HOSPITAL_MEASURES[m].to_string(),
            format!("{}%", rng.gen_range(55..100)),
            rng.gen_range(10..400).to_string(),
            format!("{}%", rng.gen_range(60..99)),
            i.to_string(),
        ]);
    }

    let mut dirty = clean.clone();
    let mix = [
        (ErrorKind::Typo, 0.95),
        (ErrorKind::ViolatedDependency, 0.05),
    ];
    Injector::new(
        n_rows * COLUMNS.len(),
        Dataset::Hospital.paper_error_rate(),
        &mix,
        &mut rng,
    )
    .run(&mut dirty, |kind, _r, c, old, rng| match kind {
        // The hallmark 'x' typo on any textual cell.
        ErrorKind::Typo => x_typo(old, rng),
        // Repeated hospital information that disagrees: swap in the
        // metadata of a different hospital (looks perfectly valid).
        ErrorKind::ViolatedDependency => match c {
            1 => {
                let other = vocab::pick(rng, vocab::HOSPITAL_NAMES);
                (*other != old).then(|| other.to_string())
            }
            5 => {
                let (city, _) = vocab::pick(rng, vocab::CITY_STATE);
                let lc = city.to_lowercase();
                (lc != old).then_some(lc)
            }
            _ => None,
        },
        _ => None,
    });
    (dirty, clean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_table::CellFrame;

    #[test]
    fn most_errors_contain_x() {
        let cfg = GenConfig {
            scale: 0.2,
            seed: 8,
        };
        let (dirty, clean) = generate(&cfg);
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        let errors: Vec<_> = frame.cells().iter().filter(|c| c.label).collect();
        assert!(!errors.is_empty());
        let with_x = errors.iter().filter(|c| c.value_x.contains('x')).count();
        assert!(
            with_x as f64 / errors.len() as f64 > 0.75,
            "only {with_x}/{} errors carry the x marker",
            errors.len()
        );
    }

    #[test]
    fn alphabet_is_small_like_the_paper() {
        // Hospital is all-lowercase: Table 2 reports just 46 distinct chars.
        let cfg = GenConfig {
            scale: 0.1,
            seed: 9,
        };
        let (dirty, clean) = generate(&cfg);
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        assert!(
            frame.distinct_chars() < 60,
            "alphabet {}",
            frame.distinct_chars()
        );
    }
}
