//! The six benchmark datasets and their generation entry point.

use crate::corrupt::ErrorKind;
use etsb_table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Row-count multiplier against the paper's dataset sizes
    /// (`1.0` reproduces Table 2 exactly; the Tax benches default to
    /// `0.025` so the suite runs on a laptop). Clamped to at least 30
    /// rows so the 20-tuple trainset always leaves a testset.
    pub scale: f64,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            scale: 1.0,
            seed: 42,
        }
    }
}

impl GenConfig {
    /// Effective row count for a paper-size dataset of `paper_rows`.
    pub fn rows(&self, paper_rows: usize) -> usize {
        ((paper_rows as f64 * self.scale).round() as usize).max(30)
    }

    /// Derive the generator RNG, mixing the dataset name so different
    /// datasets with the same seed are decorrelated.
    pub fn rng(&self, dataset: Dataset) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ (dataset as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// A generated dirty/clean pair.
#[derive(Clone, Debug)]
pub struct DatasetPair {
    /// Which benchmark this is.
    pub dataset: Dataset,
    /// The table containing injected errors.
    pub dirty: Table,
    /// The ground truth.
    pub clean: Table,
}

/// The six benchmark datasets of the paper's Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum Dataset {
    /// 2,410 x 11, error rate 0.16, MV/FI/VAD.
    Beers,
    /// 2,376 x 7, error rate 0.30, MV/FI/VAD.
    Flights,
    /// 1,000 x 20, error rate 0.03, T/VAD.
    Hospital,
    /// 7,390 x 17, error rate 0.06, MV/FI.
    Movies,
    /// 1,000 x 10, error rate 0.09, MV/T/FI/VAD.
    Rayyan,
    /// 200,000 x 15, error rate 0.04, T/FI/VAD.
    Tax,
}

impl Dataset {
    /// All six datasets in the paper's order.
    pub const ALL: [Dataset; 6] = [
        Dataset::Beers,
        Dataset::Flights,
        Dataset::Hospital,
        Dataset::Movies,
        Dataset::Rayyan,
        Dataset::Tax,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Beers => "Beers",
            Dataset::Flights => "Flights",
            Dataset::Hospital => "Hospital",
            Dataset::Movies => "Movies",
            Dataset::Rayyan => "Rayyan",
            Dataset::Tax => "Tax",
        }
    }

    /// Parse a (case-insensitive) dataset name.
    pub fn parse(name: &str) -> Option<Dataset> {
        Dataset::ALL
            .into_iter()
            .find(|d| d.name().eq_ignore_ascii_case(name))
    }

    /// Paper row count (Table 2).
    pub fn paper_rows(self) -> usize {
        match self {
            Dataset::Beers => 2410,
            Dataset::Flights => 2376,
            Dataset::Hospital => 1000,
            Dataset::Movies => 7390,
            Dataset::Rayyan => 1000,
            Dataset::Tax => 200_000,
        }
    }

    /// Paper column count (Table 2).
    pub fn paper_cols(self) -> usize {
        match self {
            Dataset::Beers => 11,
            Dataset::Flights => 7,
            Dataset::Hospital => 20,
            Dataset::Movies => 17,
            Dataset::Rayyan => 10,
            Dataset::Tax => 15,
        }
    }

    /// Paper cell error rate (Table 2).
    pub fn paper_error_rate(self) -> f64 {
        match self {
            Dataset::Beers => 0.16,
            Dataset::Flights => 0.30,
            Dataset::Hospital => 0.03,
            Dataset::Movies => 0.06,
            Dataset::Rayyan => 0.09,
            Dataset::Tax => 0.04,
        }
    }

    /// Paper distinct-character count (Table 2) — a target, not a
    /// guarantee, for the synthetic generators.
    pub fn paper_distinct_chars(self) -> usize {
        match self {
            Dataset::Beers => 86,
            Dataset::Flights => 70,
            Dataset::Hospital => 46,
            Dataset::Movies => 135,
            Dataset::Rayyan => 101,
            Dataset::Tax => 69,
        }
    }

    /// Error types present (Table 2).
    pub fn error_kinds(self) -> &'static [ErrorKind] {
        use ErrorKind::*;
        match self {
            Dataset::Beers => &[MissingValue, FormattingIssue, ViolatedDependency],
            Dataset::Flights => &[MissingValue, FormattingIssue, ViolatedDependency],
            Dataset::Hospital => &[Typo, ViolatedDependency],
            Dataset::Movies => &[MissingValue, FormattingIssue],
            Dataset::Rayyan => &[MissingValue, Typo, FormattingIssue, ViolatedDependency],
            Dataset::Tax => &[Typo, FormattingIssue, ViolatedDependency],
        }
    }

    /// Generate the dirty/clean pair.
    ///
    /// Fails with [`etsb_table::TableError`] when a generator's column
    /// plan is inconsistent with its declared schema (a bug surfaced as
    /// an error rather than a panic, per the library-crate policy).
    pub fn generate(self, cfg: &GenConfig) -> Result<DatasetPair, etsb_table::TableError> {
        let _span = etsb_obs::obs_span!(
            "dataset.generate",
            "dataset" => self.name(),
            "scale" => cfg.scale,
            "seed" => cfg.seed,
        );
        let (dirty, clean) = match self {
            Dataset::Beers => crate::beers::generate(cfg)?,
            Dataset::Flights => crate::flights::generate(cfg),
            Dataset::Hospital => crate::hospital::generate(cfg),
            Dataset::Movies => crate::movies::generate(cfg)?,
            Dataset::Rayyan => crate::rayyan::generate(cfg)?,
            Dataset::Tax => crate::tax::generate(cfg),
        };
        if etsb_obs::enabled() {
            let (rows, cols) = dirty.shape();
            etsb_obs::obs_event!(
                "dataset.shape",
                "dataset" => self.name(),
                "rows" => rows,
                "cols" => cols,
                "cells" => rows * cols,
            );
        }
        Ok(DatasetPair {
            dataset: self,
            dirty,
            clean,
        })
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_table::{stats::DatasetStats, CellFrame};

    #[test]
    fn parse_names() {
        assert_eq!(Dataset::parse("beers"), Some(Dataset::Beers));
        assert_eq!(Dataset::parse("TAX"), Some(Dataset::Tax));
        assert_eq!(Dataset::parse("nope"), None);
    }

    /// Every generator must hit its Table-2 statistics at small scale:
    /// exact shape, error rate within ±15% relative, distinct chars within
    /// a factor of two of the paper's alphabet.
    #[test]
    fn generators_match_paper_statistics() {
        let cfg = GenConfig {
            scale: 0.05,
            seed: 7,
        };
        for ds in Dataset::ALL {
            let pair = ds.generate(&cfg).expect("dataset generation");
            let expect_rows = cfg.rows(ds.paper_rows());
            assert_eq!(
                pair.dirty.shape(),
                (expect_rows, ds.paper_cols()),
                "{ds}: dirty shape"
            );
            assert_eq!(
                pair.dirty.shape(),
                pair.clean.shape(),
                "{ds}: shape mismatch"
            );
            let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
            let stats = DatasetStats::of(&frame);
            let target = ds.paper_error_rate();
            assert!(
                (stats.error_rate - target).abs() / target < 0.15,
                "{ds}: error rate {} vs target {target}",
                stats.error_rate
            );
            let chars = ds.paper_distinct_chars() as f64;
            assert!(
                stats.distinct_chars as f64 > chars * 0.4
                    && (stats.distinct_chars as f64) < chars * 2.0,
                "{ds}: distinct chars {} vs paper {chars}",
                stats.distinct_chars
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig {
            scale: 0.03,
            seed: 99,
        };
        for ds in [Dataset::Beers, Dataset::Hospital] {
            let a = ds.generate(&cfg).expect("dataset generation");
            let b = ds.generate(&cfg).expect("dataset generation");
            assert_eq!(a.dirty, b.dirty, "{ds}: dirty differs across runs");
            assert_eq!(a.clean, b.clean, "{ds}: clean differs across runs");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::Beers
            .generate(&GenConfig {
                scale: 0.03,
                seed: 1,
            })
            .expect("dataset generation");
        let b = Dataset::Beers
            .generate(&GenConfig {
                scale: 0.03,
                seed: 2,
            })
            .expect("dataset generation");
        assert_ne!(a.clean, b.clean);
    }

    #[test]
    fn scale_clamps_to_minimum() {
        let cfg = GenConfig {
            scale: 0.00001,
            seed: 1,
        };
        let pair = Dataset::Rayyan.generate(&cfg).expect("dataset generation");
        assert_eq!(pair.dirty.n_rows(), 30);
    }
}
