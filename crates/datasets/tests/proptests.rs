//! Property-based tests for the dataset generators and the error
//! injector.

use etsb_datasets::{Dataset, GenConfig};
use etsb_table::CellFrame;
use proptest::prelude::*;

proptest! {
    // Generation is the expensive part; keep case counts low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_seed_produces_valid_pairs(seed in 0u64..10_000, ds_idx in 0usize..6) {
        let ds = Dataset::ALL[ds_idx];
        let cfg = GenConfig { scale: 0.02, seed };
        let pair = ds.generate(&cfg).expect("dataset generation");
        prop_assert_eq!(pair.dirty.shape(), pair.clean.shape());
        prop_assert_eq!(pair.dirty.n_cols(), ds.paper_cols());
        let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
        // Errors exist and never exceed twice the nominal rate.
        prop_assert!(frame.error_rate() > 0.0, "{}: no errors injected", ds);
        prop_assert!(
            frame.error_rate() < ds.paper_error_rate() * 2.0 + 0.05,
            "{}: error rate {} too high",
            ds,
            frame.error_rate()
        );
    }

    #[test]
    fn scale_controls_row_count(scale in 0.01f64..0.2) {
        let cfg = GenConfig { scale, seed: 1 };
        let pair = Dataset::Rayyan.generate(&cfg).expect("dataset generation");
        let expected = ((1000.0 * scale).round() as usize).max(30);
        prop_assert_eq!(pair.dirty.n_rows(), expected);
    }

    #[test]
    fn error_cells_differ_and_clean_cells_match(seed in 0u64..1000) {
        let cfg = GenConfig { scale: 0.03, seed };
        let pair = Dataset::Beers.generate(&cfg).expect("dataset generation");
        let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
        for cell in frame.cells() {
            if cell.label {
                prop_assert_ne!(&cell.value_x, &cell.value_y);
            } else {
                prop_assert_eq!(&cell.value_x, &cell.value_y);
            }
        }
    }

    #[test]
    fn hospital_errors_remain_x_marked(seed in 0u64..500) {
        let cfg = GenConfig { scale: 0.06, seed };
        let pair = Dataset::Hospital.generate(&cfg).expect("dataset generation");
        let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
        let errors: Vec<_> = frame.cells().iter().filter(|c| c.label).collect();
        prop_assert!(!errors.is_empty());
        let with_x = errors.iter().filter(|c| c.value_x.contains('x')).count();
        prop_assert!(
            with_x * 10 >= errors.len() * 7,
            "only {}/{} errors carry the x marker",
            with_x,
            errors.len()
        );
    }
}
