//! Tracing under the sharded fold: instrumentation must come from the
//! coordinating thread only (well-formed nesting, fixed shard counters)
//! and must not change the fold's result for any worker count.
//!
//! Kept to a single `#[test]` because the obs sink is process-global.

use etsb_nn::parallel::{fold_shards, parallel_fold, set_worker_override};
use etsb_obs::{set_sink, CaptureSink, FieldValue};

fn fold_sum(n: usize) -> f64 {
    parallel_fold(
        n,
        || 0.0f64,
        |acc, i| *acc += (i as f64).sqrt(),
        |a, b| *a += b,
    )
}

#[test]
fn parallel_fold_traces_from_the_coordinating_thread_only() {
    const N: usize = 400;
    let expected = fold_sum(N); // tracing off, default workers

    let (sink, buffer) = CaptureSink::new();
    set_sink(Some(Box::new(sink)));
    set_worker_override(2);
    let traced = fold_sum(N);
    set_worker_override(0);
    set_sink(None);

    assert_eq!(traced, expected, "tracing changed the fold result");

    let events = buffer.lock().expect("capture buffer").clone();
    let kinds: Vec<(&str, String)> = events.iter().map(|e| (e.kind, e.span.clone())).collect();

    // Well-formed nesting, emitted in coordinator order: fold opens,
    // shard counters land inside it, merge opens and closes inside it.
    let shards = fold_shards(N);
    let mut want = vec![("span_start", "parallel_fold".to_string())];
    want.extend(std::iter::repeat_n(
        ("counter", "parallel_fold".to_string()),
        shards,
    ));
    want.push(("span_start", "parallel_fold.merge".to_string()));
    want.push(("span_end", "parallel_fold.merge".to_string()));
    want.push(("span_end", "parallel_fold".to_string()));
    assert_eq!(kinds, want, "events: {events:?}");

    // The shard counters describe the fixed shard structure exactly:
    // every item is counted once, shard ids ascend from 0.
    let mut total = 0u64;
    for (i, e) in events.iter().filter(|e| e.kind == "counter").enumerate() {
        let field = |name: &str| {
            e.fields.iter().find_map(|(k, v)| match v {
                FieldValue::U64(n) if *k == name => Some(*n),
                _ => None,
            })
        };
        assert_eq!(field("shard"), Some(i as u64));
        total += field("value").expect("shard counter carries value");
    }
    assert_eq!(total, N as u64, "shard counters must cover every item");

    // The worker count recorded on the span is the forced override.
    let start = &events[0];
    assert!(
        start
            .fields
            .iter()
            .any(|(k, v)| *k == "workers" && *v == FieldValue::U64(2)),
        "span fields: {:?}",
        start.fields
    );
}
