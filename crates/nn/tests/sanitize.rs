//! Sanitizer behaviour: with the `sanitize` feature a NaN injected into
//! a weight matrix panics at the first op that touches it, attributing
//! layer, op and offending index; without the feature the same forward
//! pass completes silently (the hooks compile out).

use etsb_nn::{Activation, Dense};
use etsb_tensor::init::seeded_rng;
use etsb_tensor::Matrix;

fn poisoned_dense() -> Dense {
    let mut rng = seeded_rng(7);
    // Linear: f32::max in relu would silently wash the NaN out again.
    let mut layer = Dense::new(4, 3, Activation::Linear, &mut rng);
    layer.w.value.as_mut_slice()[5] = f32::NAN;
    layer
}

fn forward_batch(layer: &Dense) -> Matrix {
    let mut rng = seeded_rng(8);
    let inputs = etsb_tensor::init::uniform(2, 4, 1.0, &mut rng);
    layer.forward(inputs).0
}

#[cfg(feature = "sanitize")]
mod enabled {
    use super::*;
    use etsb_nn::softmax_cross_entropy;

    fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("string panic payload")
    }

    #[test]
    fn nan_in_weight_matrix_panics_with_layer_and_op() {
        let layer = poisoned_dense();
        let err = std::panic::catch_unwind(|| forward_batch(&layer))
            .expect_err("sanitize must panic on NaN weights");
        let msg = panic_message(err);
        assert!(msg.contains("sanitize:"), "not a sanitizer panic: {msg}");
        assert!(msg.contains("matmul"), "op missing from: {msg}");
        assert!(msg.contains("index"), "index missing from: {msg}");
    }

    #[test]
    fn nan_logits_panic_inside_the_loss() {
        let logits = Matrix::from_rows(&[&[0.3, f32::NAN]]);
        let err = std::panic::catch_unwind(|| softmax_cross_entropy(&logits, &[0]))
            .expect_err("sanitize must panic on NaN logits");
        let msg = panic_message(err);
        assert!(msg.contains("loss"), "layer missing from: {msg}");
    }

    #[test]
    fn finite_training_step_is_unaffected() {
        let mut rng = seeded_rng(9);
        let layer = Dense::new(4, 3, Activation::Tanh, &mut rng);
        let out = forward_batch(&layer);
        assert_eq!(out.shape(), (2, 3));
    }
}

#[cfg(not(feature = "sanitize"))]
mod disabled {
    use super::*;

    #[test]
    fn hooks_compile_out_and_nan_flows_through() {
        assert!(!etsb_tensor::sanitize::enabled());
        // Same poisoned forward pass: must NOT panic without the feature;
        // the NaN simply propagates into the output.
        let out = forward_batch(&poisoned_dense());
        assert!(out.as_slice().iter().any(|v| v.is_nan()));
    }
}
