//! Property-based tests for the neural substrate: gradient correctness
//! over random shapes and inputs for every recurrent cell, and optimizer
//! behaviour on random quadratics.

use etsb_nn::{
    grad_buffer_for, Activation, Dense, GradBuffer, GruCell, LstmCell, Optimizer, Param,
    Recurrence, Rmsprop, RnnCell, Sgd,
};
use etsb_tensor::{init::seeded_rng, Matrix};
use proptest::prelude::*;

/// Check one random weight coordinate of a cell against central
/// differences of the sum-of-outputs loss.
fn cell_gradcheck<C: Recurrence>(cell: C, inputs: Matrix, param_idx: usize) -> (f32, f32) {
    let loss = |c: &C, x: &Matrix| c.forward_seq(x.clone()).0.sum();
    let (out, cache) = cell.forward_seq(inputs.clone());
    let ones = Matrix::full(out.rows(), out.cols(), 1.0);
    let mut grads = grad_buffer_for(&cell.params());
    let _ = cell.backward_seq(&cache, &ones, grads.slots_mut());
    let analytic = grads.slot(param_idx)[(0, 0)];
    let h = 1e-3_f32;
    let mut plus = cell.clone();
    plus.params_mut()[param_idx].value[(0, 0)] += h;
    let mut minus = cell.clone();
    minus.params_mut()[param_idx].value[(0, 0)] -= h;
    let numeric = (loss(&plus, &inputs) - loss(&minus, &inputs)) / (2.0 * h);
    (analytic, numeric)
}

fn close(analytic: f32, numeric: f32) -> bool {
    (analytic - numeric).abs() < 3e-2 * analytic.abs().max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rnn_gradients_hold_over_random_shapes(
        seed in 0u64..500,
        t in 1usize..8,
        input_dim in 1usize..5,
        hidden in 1usize..5,
        pidx in 0usize..3,
    ) {
        let mut rng = seeded_rng(seed);
        let cell = RnnCell::new(input_dim, hidden, &mut rng);
        let x = Matrix::from_fn(t, input_dim, |i, j| ((seed as f32 + (i * 3 + j) as f32) * 0.57).sin() * 0.5);
        let (a, n) = cell_gradcheck(cell, x, pidx);
        prop_assert!(close(a, n), "analytic {a} vs numeric {n}");
    }

    #[test]
    fn lstm_gradients_hold_over_random_shapes(
        seed in 0u64..500,
        t in 1usize..6,
        input_dim in 1usize..4,
        hidden in 1usize..4,
        pidx in 0usize..3,
    ) {
        let mut rng = seeded_rng(seed);
        let cell = LstmCell::new(input_dim, hidden, &mut rng);
        let x = Matrix::from_fn(t, input_dim, |i, j| ((seed as f32 + (i * 2 + j) as f32) * 0.43).cos() * 0.5);
        let (a, n) = cell_gradcheck(cell, x, pidx);
        prop_assert!(close(a, n), "analytic {a} vs numeric {n}");
    }

    #[test]
    fn gru_gradients_hold_over_random_shapes(
        seed in 0u64..500,
        t in 1usize..6,
        input_dim in 1usize..4,
        hidden in 1usize..4,
        pidx in 0usize..3,
    ) {
        let mut rng = seeded_rng(seed);
        let cell = GruCell::new(input_dim, hidden, &mut rng);
        let x = Matrix::from_fn(t, input_dim, |i, j| ((seed as f32 + (i * 5 + j) as f32) * 0.71).sin() * 0.5);
        let (a, n) = cell_gradcheck(cell, x, pidx);
        prop_assert!(close(a, n), "analytic {a} vs numeric {n}");
    }

    #[test]
    fn dense_gradients_hold(
        seed in 0u64..500,
        rows in 1usize..6,
        input_dim in 1usize..5,
        output_dim in 1usize..5,
    ) {
        let mut rng = seeded_rng(seed);
        for act in [Activation::Linear, Activation::Tanh, Activation::Relu] {
            let layer = Dense::new(input_dim, output_dim, act, &mut rng);
            let x = Matrix::from_fn(rows, input_dim, |i, j| ((seed as f32 + (i + j) as f32) * 0.39).sin());
            let (out, cache) = layer.forward(x.clone());
            let ones = Matrix::full(out.rows(), out.cols(), 1.0);
            let mut grads = grad_buffer_for(&layer.params());
            let _ = layer.backward(&cache, &ones, grads.slots_mut());
            let analytic = grads.slot(0)[(0, 0)];
            let h = 1e-3_f32;
            let loss = |l: &Dense, x: &Matrix| l.forward(x.clone()).0.sum();
            let mut plus = layer.clone();
            plus.params_mut()[0].value[(0, 0)] += h;
            let mut minus = layer.clone();
            minus.params_mut()[0].value[(0, 0)] -= h;
            let numeric = (loss(&plus, &x) - loss(&minus, &x)) / (2.0 * h);
            prop_assert!(close(analytic, numeric), "{act:?}: {analytic} vs {numeric}");
        }
    }

    #[test]
    fn optimizers_descend_random_quadratics(
        target in -5.0f32..5.0,
        curvature in 0.2f32..4.0,
    ) {
        // f(w) = curvature (w - target)²; both optimizers must reduce f.
        for mode in 0..2 {
            let mut p = Param::new(Matrix::zeros(1, 1));
            let mut grads = GradBuffer::from_shapes([(1, 1)]);
            let f = |w: f32| curvature * (w - target) * (w - target);
            let initial = f(p.value[(0, 0)]);
            let mut sgd = Sgd::new(0.05 / curvature);
            let mut rms = Rmsprop::new(0.05);
            for _ in 0..200 {
                let w = p.value[(0, 0)];
                grads.zero();
                grads.slot_mut(0)[(0, 0)] = 2.0 * curvature * (w - target);
                if mode == 0 {
                    sgd.step(&mut [&mut p], &grads);
                } else {
                    rms.step(&mut [&mut p], &grads);
                }
            }
            // RMSprop's adaptive step keeps a steady-state wiggle of
            // roughly ±lr around the optimum, so "converged" means
            // within that noise floor — or a large relative improvement
            // when the start was far away.
            let noise_floor = curvature * 0.01; // (2·lr)² amplitude
            let final_loss = f(p.value[(0, 0)]);
            prop_assert!(
                final_loss < initial * 0.6 || final_loss < noise_floor.max(1e-3),
                "mode {mode}: {initial} -> {final_loss} (floor {noise_floor})"
            );
        }
    }

    #[test]
    fn snapshot_restore_is_identity(seed in 0u64..500, n in 1usize..5) {
        let mut rng = seeded_rng(seed);
        let cell = RnnCell::new(n, n, &mut rng);
        let snap = etsb_nn::snapshot(&Recurrence::params(&cell));
        let mut copy = cell.clone();
        for p in Recurrence::params_mut(&mut copy) {
            p.value.map_inplace(|x| x + 1.0);
        }
        etsb_nn::restore(&snap, &mut Recurrence::params_mut(&mut copy)).unwrap();
        for (a, b) in Recurrence::params(&cell).iter().zip(Recurrence::params(&copy)) {
            prop_assert_eq!(&a.value, &b.value);
        }
    }
}
