//! Allocation-regression guard for the sequence hot path.
//!
//! The whole point of the workspace refactor is that a *warmed*
//! forward/backward pass over a sequence performs zero heap allocations:
//! every buffer is either owned by the reusable cache or borrowed from
//! the per-worker [`Workspace`]. This test pins that property with a
//! counting global allocator — if someone reintroduces a per-step or
//! per-sample allocation, the count goes nonzero and the test names it.
//
// A test-only global allocator shim is the one legitimate unsafe block in
// the workspace; the deny-by-default lint stays on everywhere else.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use etsb_nn::{RnnCache, RnnCell};
use etsb_tensor::{init::seeded_rng, Matrix, Workspace};

/// Counts every allocation (alloc, alloc_zeroed, realloc) while
/// delegating the actual work to the system allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn warmed_rnn_forward_backward_is_allocation_free() {
    let mut rng = seeded_rng(7);
    let (t_max, input_dim, hidden) = (32, 12, 16);
    let cell = RnnCell::new(input_dim, hidden, &mut rng);
    let inputs = Matrix::from_fn(t_max, input_dim, |i, j| {
        ((i * input_dim + j) as f32 * 0.13).sin()
    });
    let grad_hidden = Matrix::from_fn(t_max, hidden, |i, j| ((i * hidden + j) as f32 * 0.29).cos());

    let mut ws = Workspace::new();
    let mut cache = RnnCache::default();
    let mut grads = vec![
        Matrix::zeros(input_dim, hidden),
        Matrix::zeros(hidden, hidden),
        Matrix::zeros(1, hidden),
    ];
    let mut grad_inputs = Matrix::default();

    // Warm-up: every cache / workspace / output buffer reaches its final
    // capacity here (two rounds so pool put/take cycles settle too).
    for _ in 0..2 {
        cell.forward_into(&inputs, &mut cache, &mut ws);
        cell.backward_into(&cache, &grad_hidden, &mut grads, &mut grad_inputs, &mut ws);
    }

    let before = allocations();
    cell.forward_into(&inputs, &mut cache, &mut ws);
    cell.backward_into(&cache, &grad_hidden, &mut grads, &mut grad_inputs, &mut ws);
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "warmed RnnCell forward+backward heap-allocated {} time(s)",
        after - before
    );
}
