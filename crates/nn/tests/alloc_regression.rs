//! Allocation-regression guard for the sequence hot path.
//!
//! The whole point of the workspace refactor is that a *warmed*
//! forward/backward pass over a sequence performs zero heap allocations:
//! every buffer is either owned by the reusable cache or borrowed from
//! the per-worker [`Workspace`]. This test pins that property with a
//! counting global allocator — if someone reintroduces a per-step or
//! per-sample allocation, the count goes nonzero and the test names it.
//
// A test-only global allocator shim is the one legitimate unsafe block in
// the workspace; the deny-by-default lint stays on everywhere else.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use etsb_nn::{grad_buffer_for, RnnCache, RnnCell, SeqBatch, StackedBiRnn, StackedBiRnnCache};
use etsb_tensor::{init::seeded_rng, KernelPolicy, Matrix, Workspace};

/// Counts every allocation (alloc, alloc_zeroed, realloc) while
/// delegating the actual work to the system allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: every method delegates verbatim to the System allocator after
// bumping an atomic counter; the GlobalAlloc contract (layout validity,
// pointer provenance) is upheld by System itself.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds the GlobalAlloc contract; System does the work.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: `layout` is the caller's, passed through unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds the GlobalAlloc contract; System does the work.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: `layout` is the caller's, passed through unchanged.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: caller upholds the GlobalAlloc contract; System does the work.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: `ptr`/`layout` came from this allocator (which is System).
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: caller upholds the GlobalAlloc contract; System does the work.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` came from this allocator (which is System).
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn warmed_rnn_forward_backward_is_allocation_free() {
    let mut rng = seeded_rng(7);
    let (t_max, input_dim, hidden) = (32, 12, 16);
    let cell = RnnCell::new(input_dim, hidden, &mut rng);
    let inputs = Matrix::from_fn(t_max, input_dim, |i, j| {
        ((i * input_dim + j) as f32 * 0.13).sin()
    });
    let grad_hidden = Matrix::from_fn(t_max, hidden, |i, j| ((i * hidden + j) as f32 * 0.29).cos());

    let mut ws = Workspace::new();
    let mut cache = RnnCache::default();
    let mut grads = vec![
        Matrix::zeros(input_dim, hidden),
        Matrix::zeros(hidden, hidden),
        Matrix::zeros(1, hidden),
    ];
    let mut grad_inputs = Matrix::default();

    // Warm-up: every cache / workspace / output buffer reaches its final
    // capacity here (two rounds so pool put/take cycles settle too).
    for _ in 0..2 {
        cell.forward_into(&inputs, &mut cache, &mut ws);
        cell.backward_into(&cache, &grad_hidden, &mut grads, &mut grad_inputs, &mut ws);
    }

    let before = allocations();
    cell.forward_into(&inputs, &mut cache, &mut ws);
    cell.backward_into(&cache, &grad_hidden, &mut grads, &mut grad_inputs, &mut ws);
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "warmed RnnCell forward+backward heap-allocated {} time(s)",
        after - before
    );
}

#[test]
fn warmed_batched_stack_is_allocation_free() {
    let mut rng = seeded_rng(11);
    let (input_dim, hidden) = (9, 12);
    let net: StackedBiRnn<RnnCell> = StackedBiRnn::new(input_dim, hidden, &mut rng);
    let batch = SeqBatch::from_lengths(&[17, 5, 29, 11]);
    let packed = Matrix::from_fn(batch.total_rows(), input_dim, |i, j| {
        ((i * input_dim + j) as f32 * 0.17).sin()
    });
    let grad_features = Matrix::from_fn(batch.n_samples(), 2 * hidden, |i, j| {
        ((i * 2 * hidden + j) as f32 * 0.23).cos()
    });

    let mut ws = Workspace::new();
    let mut cache = StackedBiRnnCache::default();
    let mut grads = grad_buffer_for(&net.params());
    let mut features = Matrix::default();
    let mut grad_inputs = Matrix::default();

    for _ in 0..2 {
        net.forward_batch_into(
            &packed,
            &batch,
            &mut features,
            &mut cache,
            &mut ws,
            KernelPolicy::Exact,
        );
        net.backward_batch_into(
            &batch,
            &cache,
            &grad_features,
            grads.slots_mut(),
            &mut grad_inputs,
            &mut ws,
        );
    }

    let before = allocations();
    net.forward_batch_into(
        &packed,
        &batch,
        &mut features,
        &mut cache,
        &mut ws,
        KernelPolicy::Exact,
    );
    net.backward_batch_into(
        &batch,
        &cache,
        &grad_features,
        grads.slots_mut(),
        &mut grad_inputs,
        &mut ws,
    );
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "warmed batched stack forward+backward heap-allocated {} time(s)",
        after - before
    );
}

/// Epoch-over-epoch guard for the batched workspace keys: once the pools
/// are warm, repeating the same batch must not grow the retained heap
/// footprint — a growing `pooled_bytes()` means some batched key leaks a
/// fresh allocation per epoch.
#[test]
fn batched_workspace_footprint_stabilizes_across_epochs() {
    let mut rng = seeded_rng(12);
    let (input_dim, hidden) = (7, 10);
    let net: StackedBiRnn<RnnCell> = StackedBiRnn::new(input_dim, hidden, &mut rng);
    let batch = SeqBatch::from_lengths(&[13, 4, 21, 8, 1]);
    let packed = Matrix::from_fn(batch.total_rows(), input_dim, |i, j| {
        ((i * input_dim + j) as f32 * 0.19).sin()
    });
    let grad_features = Matrix::from_fn(batch.n_samples(), 2 * hidden, |i, j| {
        ((i * 2 * hidden + j) as f32 * 0.31).cos()
    });

    let mut ws = Workspace::new();
    let mut cache = StackedBiRnnCache::default();
    let mut grads = grad_buffer_for(&net.params());
    let mut features = Matrix::default();
    let mut grad_inputs = Matrix::default();

    let mut bytes = Vec::new();
    for _ in 0..6 {
        net.forward_batch_into(
            &packed,
            &batch,
            &mut features,
            &mut cache,
            &mut ws,
            KernelPolicy::Exact,
        );
        net.backward_batch_into(
            &batch,
            &cache,
            &grad_features,
            grads.slots_mut(),
            &mut grad_inputs,
            &mut ws,
        );
        bytes.push(ws.pooled_bytes());
    }
    assert!(bytes[2] > 0, "workspace unexpectedly empty after warmup");
    assert!(
        bytes[2..].iter().all(|&b| b == bytes[2]),
        "workspace retained bytes kept growing across warmed epochs: {bytes:?}"
    );
}
