//! Weight checkpointing.
//!
//! The paper saves the model weights after every epoch whose training loss
//! improves on the best seen so far, and restores that snapshot before
//! evaluation (§5.2). [`snapshot`] serializes a parameter list to bytes;
//! [`restore`] writes a snapshot back into the same parameter list.

use crate::Param;
use bytes::{Bytes, BytesMut};
use etsb_tensor::{decode_matrix, encode_matrix, DecodeError};

/// Error restoring a checkpoint into a parameter list.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying matrix decode failure.
    Decode(DecodeError),
    /// Snapshot holds a different number of matrices than the target.
    CountMismatch {
        /// Matrices in the snapshot.
        snapshot: usize,
        /// Parameters in the target model.
        target: usize,
    },
    /// A matrix in the snapshot has a different shape than its target.
    ShapeMismatch {
        /// Index of the offending matrix.
        index: usize,
        /// Shape found in the snapshot.
        snapshot: (usize, usize),
        /// Shape the model expects.
        target: (usize, usize),
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Decode(e) => write!(f, "checkpoint decode: {e}"),
            CheckpointError::CountMismatch { snapshot, target } => {
                write!(
                    f,
                    "checkpoint holds {snapshot} matrices, model has {target}"
                )
            }
            CheckpointError::ShapeMismatch {
                index,
                snapshot,
                target,
            } => write!(
                f,
                "checkpoint matrix {index} is {snapshot:?}, model expects {target:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<DecodeError> for CheckpointError {
    fn from(e: DecodeError) -> Self {
        CheckpointError::Decode(e)
    }
}

/// Serialize the values of `params` (gradients are not saved).
pub fn snapshot(params: &[&Param]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.reserve(8);
    bytes::BufMut::put_u64_le(&mut buf, params.len() as u64);
    for p in params {
        encode_matrix(&p.value, &mut buf);
    }
    buf.freeze()
}

/// Restore a snapshot produced by [`snapshot`] into `params`.
///
/// Shapes must match exactly; gradients are left untouched.
pub fn restore(snapshot: &Bytes, params: &mut [&mut Param]) -> Result<(), CheckpointError> {
    let mut buf = snapshot.clone();
    if bytes::Buf::remaining(&buf) < 8 {
        return Err(CheckpointError::Decode(DecodeError::Truncated {
            needed: 8,
            available: bytes::Buf::remaining(&buf),
        }));
    }
    let count = bytes::Buf::get_u64_le(&mut buf) as usize;
    if count != params.len() {
        return Err(CheckpointError::CountMismatch {
            snapshot: count,
            target: params.len(),
        });
    }
    // Decode everything first so a mid-stream error leaves params intact.
    let mut decoded = Vec::with_capacity(count);
    for (i, p) in params.iter().enumerate() {
        let m = decode_matrix(&mut buf)?;
        if m.shape() != p.value.shape() {
            return Err(CheckpointError::ShapeMismatch {
                index: i,
                snapshot: m.shape(),
                target: p.value.shape(),
            });
        }
        decoded.push(m);
    }
    for (p, m) in params.iter_mut().zip(decoded) {
        p.value = m;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_tensor::Matrix;

    #[test]
    fn round_trip_restores_values() {
        let mut a = Param::new(Matrix::from_fn(2, 3, |i, j| (i + j) as f32));
        let mut b = Param::new(Matrix::identity(4));
        let snap = snapshot(&[&a, &b]);
        let (va, vb) = (a.value.clone(), b.value.clone());
        a.value.fill_zero();
        b.value.fill_zero();
        restore(&snap, &mut [&mut a, &mut b]).unwrap();
        assert_eq!(a.value, va);
        assert_eq!(b.value, vb);
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let a = Param::new(Matrix::zeros(1, 1));
        let snap = snapshot(&[&a]);
        let mut x = Param::new(Matrix::zeros(1, 1));
        let mut y = Param::new(Matrix::zeros(1, 1));
        assert!(matches!(
            restore(&snap, &mut [&mut x, &mut y]),
            Err(CheckpointError::CountMismatch { .. })
        ));
    }

    #[test]
    fn shape_mismatch_leaves_params_untouched() {
        let a = Param::new(Matrix::full(2, 2, 7.0));
        let snap = snapshot(&[&a]);
        let mut target = Param::new(Matrix::full(3, 3, 1.0));
        assert!(matches!(
            restore(&snap, &mut [&mut target]),
            Err(CheckpointError::ShapeMismatch { .. })
        ));
        assert_eq!(target.value, Matrix::full(3, 3, 1.0));
    }

    #[test]
    fn snapshot_length_is_header_plus_matrices() {
        // Values only: a snapshot of one 1x1 param is the 8-byte count
        // header plus one encoded matrix — no gradient payload.
        let a = Param::new(Matrix::zeros(1, 1));
        let single = snapshot(&[&a]).len();
        let double = snapshot(&[&a, &a]).len();
        assert_eq!(double - single, single - 8);
    }
}
