//! Optimizers. The paper trains with RMSprop (§5.2); SGD and Adam are
//! provided for the ablation benches and as baselines in tests.
//!
//! An optimizer holds one slot of state per parameter, keyed by the
//! *position* of the parameter in the slice passed to `step`. Models must
//! therefore always present their parameters in the same order — every
//! layer in this workspace exposes `params_mut()` with a documented stable
//! order, and the optimizer cross-checks shapes on every step. Gradients
//! arrive in a [`GradBuffer`] with the same slot order (see
//! [`crate::grad_buffer_for`]).

use crate::Param;
use etsb_tensor::{GradBuffer, Matrix};

/// A gradient-descent style optimizer.
pub trait Optimizer {
    /// Apply one update from `grads` (slot `i` holds the gradient of
    /// `params[i]`), leaving the gradients untouched (callers decide when
    /// to re-zero the buffer).
    fn step(&mut self, params: &mut [&mut Param], grads: &GradBuffer);

    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f32;

    /// Replace the learning rate (for schedules and ablations).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Verify (and on first use, create) per-parameter state slots; also
/// cross-check the gradient buffer against the parameter list.
fn sync_state(state: &mut Vec<Matrix>, params: &[&mut Param], grads: &GradBuffer, what: &str) {
    assert_eq!(
        grads.len(),
        params.len(),
        "{what}: gradient slot count {} != parameter count {}",
        grads.len(),
        params.len()
    );
    if state.is_empty() {
        *state = params
            .iter()
            .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
            .collect();
    }
    assert_eq!(
        state.len(),
        params.len(),
        "{what}: parameter count changed between steps ({} -> {})",
        state.len(),
        params.len()
    );
    for ((s, p), g) in state.iter().zip(params.iter()).zip(grads.slots()) {
        assert_eq!(
            s.shape(),
            p.value.shape(),
            "{what}: parameter shape changed between steps"
        );
        assert_eq!(
            g.shape(),
            p.value.shape(),
            "{what}: gradient slot shape does not match its parameter"
        );
        g.assert_finite(what, "step(gradient)");
    }
}

/// RMSprop (Hinton): per-weight adaptive learning rates from an EMA of
/// squared gradients. Defaults match Keras (`lr=1e-3, rho=0.9, eps=1e-7`).
#[derive(Clone, Debug)]
pub struct Rmsprop {
    lr: f32,
    /// EMA decay for the squared-gradient cache.
    pub rho: f32,
    /// Stability constant added before the square root.
    pub eps: f32,
    cache: Vec<Matrix>,
}

impl Rmsprop {
    /// New RMSprop optimizer with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            rho: 0.9,
            eps: 1e-7,
            cache: Vec::new(),
        }
    }
}

impl Default for Rmsprop {
    fn default() -> Self {
        Self::new(1e-3)
    }
}

impl Optimizer for Rmsprop {
    fn step(&mut self, params: &mut [&mut Param], grads: &GradBuffer) {
        sync_state(&mut self.cache, params, grads, "Rmsprop");
        for ((p, grad), cache) in params.iter_mut().zip(grads.slots()).zip(&mut self.cache) {
            let g = grad.as_slice();
            let v = p.value.as_mut_slice();
            let c = cache.as_mut_slice();
            for i in 0..g.len() {
                c[i] = self.rho * c[i] + (1.0 - self.rho) * g[i] * g[i];
                v[i] -= self.lr * g[i] / (c[i].sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// New SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// New SGD optimizer with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param], grads: &GradBuffer) {
        sync_state(&mut self.velocity, params, grads, "Sgd");
        for ((p, grad), vel) in params.iter_mut().zip(grads.slots()).zip(&mut self.velocity) {
            let g = grad.as_slice();
            let v = p.value.as_mut_slice();
            let m = vel.as_mut_slice();
            for i in 0..g.len() {
                m[i] = self.momentum * m[i] - self.lr * g[i];
                v[i] += m[i];
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Stability constant.
    pub eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// New Adam optimizer with standard hyper-parameters.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param], grads: &GradBuffer) {
        sync_state(&mut self.m, params, grads, "Adam(m)");
        sync_state(&mut self.v, params, grads, "Adam(v)");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, grad), m), v) in params
            .iter_mut()
            .zip(grads.slots())
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            let g = grad.as_slice();
            let w = p.value.as_mut_slice();
            let m = m.as_mut_slice();
            let vv = v.as_mut_slice();
            for i in 0..g.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                vv[i] = self.beta2 * vv[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = m[i] / bc1;
                let vhat = vv[i] / bc2;
                w[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(w) = (w - 3)² with each optimizer; all must converge.
    fn converges(mut opt: impl Optimizer, iters: usize, tol: f32) {
        let mut p = Param::new(Matrix::zeros(1, 1));
        let mut grads = GradBuffer::from_shapes([(1, 1)]);
        for _ in 0..iters {
            let w = p.value[(0, 0)];
            grads.zero();
            grads.slot_mut(0)[(0, 0)] = 2.0 * (w - 3.0);
            opt.step(&mut [&mut p], &grads);
        }
        assert!(
            (p.value[(0, 0)] - 3.0).abs() < tol,
            "did not converge: w = {}",
            p.value[(0, 0)]
        );
    }

    #[test]
    fn sgd_converges() {
        converges(Sgd::new(0.1), 200, 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        converges(Sgd::with_momentum(0.05, 0.9), 300, 1e-2);
    }

    #[test]
    fn rmsprop_converges() {
        converges(Rmsprop::new(0.05), 500, 1e-2);
    }

    #[test]
    fn adam_converges() {
        converges(Adam::new(0.1), 500, 1e-2);
    }

    #[test]
    fn rmsprop_adapts_per_weight() {
        // Two weights with very different gradient scales should both move
        // at roughly lr per step (the point of RMSprop).
        let mut opt = Rmsprop::new(0.01);
        let mut p = Param::new(Matrix::zeros(1, 2));
        let mut grads = GradBuffer::from_shapes([(1, 2)]);
        grads.slot_mut(0)[(0, 0)] = 100.0;
        grads.slot_mut(0)[(0, 1)] = 0.01;
        opt.step(&mut [&mut p], &grads);
        let d0 = -p.value[(0, 0)];
        let d1 = -p.value[(0, 1)];
        // update = lr * g / (sqrt(0.1 g²) + eps) ≈ lr / sqrt(0.1)
        assert!((d0 - d1).abs() / d0 < 0.01, "updates {d0} vs {d1}");
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn changing_param_count_panics() {
        let mut opt = Sgd::new(0.1);
        let mut a = Param::new(Matrix::zeros(1, 1));
        let mut b = Param::new(Matrix::zeros(1, 1));
        let one = GradBuffer::from_shapes([(1, 1)]);
        let two = GradBuffer::from_shapes([(1, 1), (1, 1)]);
        opt.step(&mut [&mut a], &one);
        opt.step(&mut [&mut a, &mut b], &two);
    }

    #[test]
    #[should_panic(expected = "gradient slot count")]
    fn mismatched_grad_buffer_panics() {
        let mut opt = Sgd::new(0.1);
        let mut a = Param::new(Matrix::zeros(1, 1));
        let empty = GradBuffer::from_shapes(std::iter::empty());
        opt.step(&mut [&mut a], &empty);
    }

    #[test]
    fn set_learning_rate_applies() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
        let mut p = Param::new(Matrix::zeros(1, 1));
        let mut grads = GradBuffer::from_shapes([(1, 1)]);
        grads.slot_mut(0)[(0, 0)] = 1.0;
        opt.step(&mut [&mut p], &grads);
        assert!((p.value[(0, 0)] + 0.5).abs() < 1e-6);
    }
}
