//! Packed timestep-major batch layout for batched sequence execution.
//!
//! The per-sample hot path walks one sequence at a time, so every
//! timestep is a matvec against the recurrent weights. Batch-major
//! execution packs `B` samples into a single matrix, one *timestep
//! block* after another, and runs each timestep of the whole batch as a
//! matmul instead:
//!
//! ```text
//! row(s, t) = offsets[t] + s      for slot s < active[t]
//! ```
//!
//! Samples are stable-sorted by length, longest first, so the samples
//! still alive at timestep `t` are always a *prefix* of the slots alive
//! at `t - 1`: the active batch simply shrinks as shorter sequences
//! retire, and the recurrent product at `t` reads the first `active[t]`
//! rows of timestep block `t - 1`. The sort keeps an index map
//! ([`SeqBatch::slot_of`] / [`SeqBatch::sample_at`]) so callers can
//! restore original batch order when scattering features or replaying
//! gradients.
//!
//! Bitwise determinism: every row of a batched matmul reduces in exactly
//! the same order as the per-sample matvec (`Matrix::accumulate_rows` is
//! the single reduction kernel behind both), and weight gradients are
//! replayed per sample in original batch order, so the batched path is
//! bitwise identical to running the per-sample workspace path sample by
//! sample.

use crate::rnn::split_cell_grads;
use etsb_tensor::{Matrix, Workspace};

/// Length-bucketed, timestep-major layout for a batch of sequences.
///
/// Construction stable-sorts the batch by descending length; all
/// accessors that take a `slot` refer to this sorted order, and
/// [`SeqBatch::slot_of`] maps an original batch index to its slot.
#[derive(Clone, Debug)]
pub struct SeqBatch {
    /// `order[slot]` = original batch index occupying `slot`.
    order: Vec<usize>,
    /// `pos[original]` = slot of that sample (inverse of `order`).
    pos: Vec<usize>,
    /// Per-slot sequence length, non-increasing.
    lengths: Vec<usize>,
    /// `active[t]` = number of samples with length > `t`, non-increasing.
    active: Vec<usize>,
    /// `offsets[t]` = packed row where timestep block `t` starts;
    /// `offsets[t_max]` = total packed rows.
    offsets: Vec<usize>,
}

impl SeqBatch {
    /// Build the packed layout for a batch given per-sample lengths in
    /// original batch order. Every length must be positive and the batch
    /// non-empty (the data-preparation pipeline guarantees both).
    pub fn from_lengths(lengths: &[usize]) -> Self {
        assert!(!lengths.is_empty(), "SeqBatch: empty batch");
        assert!(
            lengths.iter().all(|&l| l > 0),
            "SeqBatch: zero-length sequence"
        );
        let n = lengths.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Stable sort: equal lengths keep original relative order, which
        // makes the layout a pure function of the length multiset + order.
        order.sort_by_key(|&i| std::cmp::Reverse(lengths[i]));
        let mut pos = vec![0usize; n];
        for (slot, &orig) in order.iter().enumerate() {
            pos[orig] = slot;
        }
        let sorted: Vec<usize> = order.iter().map(|&i| lengths[i]).collect();
        let t_max = sorted[0];
        let mut active = vec![0usize; t_max];
        for &len in &sorted {
            for a in active.iter_mut().take(len) {
                *a += 1;
            }
        }
        let mut offsets = Vec::with_capacity(t_max + 1);
        let mut acc = 0usize;
        offsets.push(acc);
        for &a in &active {
            acc += a;
            offsets.push(acc);
        }
        Self {
            order,
            pos,
            lengths: sorted,
            active,
            offsets,
        }
    }

    /// [`SeqBatch::from_lengths`] with zero lengths clamped to one: a
    /// zero-length sequence occupies a single pad timestep, exactly the
    /// layout its value would get had it been encoded as the empty string
    /// (the dictionary encodes `""` as one pad token). The embedding
    /// batch kernels substitute the pad row for the missing step, so
    /// downstream results are bitwise identical either way. Use this on
    /// externally supplied batches (e.g. serving requests) that may carry
    /// raggedly empty sequences; the batch itself must still be
    /// non-empty.
    pub fn from_lengths_clamped(lengths: &[usize]) -> Self {
        if lengths.contains(&0) {
            let clamped: Vec<usize> = lengths.iter().map(|&l| l.max(1)).collect();
            Self::from_lengths(&clamped)
        } else {
            Self::from_lengths(lengths)
        }
    }

    /// Number of samples in the batch.
    pub fn n_samples(&self) -> usize {
        self.order.len()
    }

    /// Longest sequence length (= number of timestep blocks).
    pub fn t_max(&self) -> usize {
        self.lengths[0]
    }

    /// Total packed rows (sum of all lengths).
    pub fn total_rows(&self) -> usize {
        self.offsets[self.offsets.len() - 1]
    }

    /// Samples still active at timestep `t` (slots `0..active(t)`).
    pub fn active(&self, t: usize) -> usize {
        self.active[t]
    }

    /// Packed row where timestep block `t` starts.
    pub fn offset(&self, t: usize) -> usize {
        self.offsets[t]
    }

    /// Packed row holding slot `s`'s step `t`.
    pub fn row(&self, slot: usize, t: usize) -> usize {
        self.offsets[t] + slot
    }

    /// Sequence length of the sample in `slot`.
    pub fn len_at(&self, slot: usize) -> usize {
        self.lengths[slot]
    }

    /// Slot occupied by original batch index `orig`.
    pub fn slot_of(&self, orig: usize) -> usize {
        self.pos[orig]
    }

    /// Original batch index occupying `slot`.
    pub fn sample_at(&self, slot: usize) -> usize {
        self.order[slot]
    }

    /// Mean active rows per timestep — the batch-efficiency gauge the
    /// trainer exports as `batch_occupancy` (1.0 = no batching benefit,
    /// `n_samples` = perfectly rectangular batch).
    pub fn occupancy(&self) -> f64 {
        self.total_rows() as f64 / self.t_max() as f64
    }

    /// Time-reverse every sample inside the packed layout:
    /// `out[row(s, t)] = packed[row(s, len_s - 1 - t)]`. Used by the
    /// bidirectional layers, whose backward cell consumes each sequence
    /// right-to-left; the layout (lengths, offsets) is unchanged.
    pub fn reverse_packed_into(&self, packed: &Matrix, out: &mut Matrix) {
        assert_eq!(
            packed.rows(),
            self.total_rows(),
            "SeqBatch::reverse_packed_into: packed rows {} != {}",
            packed.rows(),
            self.total_rows()
        );
        out.resize_zeroed(packed.rows(), packed.cols());
        for slot in 0..self.n_samples() {
            let len = self.len_at(slot);
            for t in 0..len {
                out.row_mut(self.row(slot, t))
                    .copy_from_slice(packed.row(self.row(slot, len - 1 - t)));
            }
        }
    }
}

/// Gather one sample's time-major window out of a packed matrix.
// etsb: allow(shape-assert) -- `out` is a reshaped sink; `batch.row` bounds-checks `packed`.
fn gather_sample(batch: &SeqBatch, slot: usize, packed: &Matrix, out: &mut Matrix) {
    let len = batch.len_at(slot);
    out.resize_zeroed(len, packed.cols());
    for t in 0..len {
        out.row_mut(t)
            .copy_from_slice(packed.row(batch.row(slot, t)));
    }
}

/// Replay the weight/bias gradient accumulation of a batched backward
/// pass **per sample in original batch order**, reproducing the exact
/// floating-point op order of the per-sample workspace path.
///
/// `grads` holds the cell's three slots `(wx, wh, b)`. `dzx_packed`
/// feeds the input-weight and bias gradients, `dzh_packed` the
/// recurrent-weight gradient; cells whose two pre-activation gradients
/// coincide (vanilla, LSTM) pass the same matrix twice and the duplicate
/// gather is skipped.
pub(crate) fn accumulate_seq_grads(
    batch: &SeqBatch,
    inputs_packed: &Matrix,
    hidden_packed: &Matrix,
    dzx_packed: &Matrix,
    dzh_packed: &Matrix,
    grads: &mut [Matrix],
    ws: &mut Workspace,
) {
    let total = batch.total_rows();
    assert_eq!(
        inputs_packed.rows(),
        total,
        "accumulate_seq_grads: inputs rows {} != {}",
        inputs_packed.rows(),
        total
    );
    assert_eq!(
        hidden_packed.rows(),
        total,
        "accumulate_seq_grads: hidden rows {} != {}",
        hidden_packed.rows(),
        total
    );
    let (gwx, gwh, gb) = split_cell_grads(grads, "accumulate_seq_grads");
    let same_dz = std::ptr::eq(dzx_packed, dzh_packed);
    let mut inp_s = ws.take_mat("batch.inp_s", 0, 0);
    let mut hid_s = ws.take_mat("batch.hid_s", 0, 0);
    let mut dzx_s = ws.take_mat("batch.dzx_s", 0, 0);
    let mut dzh_s = ws.take_mat("batch.dzh_s", 0, 0);
    let mut col4 = ws.take_mat("batch.col4", 0, 0);
    for orig in 0..batch.n_samples() {
        let slot = batch.slot_of(orig);
        let len = batch.len_at(slot);
        gather_sample(batch, slot, inputs_packed, &mut inp_s);
        gather_sample(batch, slot, dzx_packed, &mut dzx_s);
        // Per-sample order: bias rows accumulate step-descending (the
        // BPTT loop direction), then the two windowed outer products.
        for t in (0..len).rev() {
            etsb_tensor::add_assign(gb.row_mut(0), dzx_s.row(t));
        }
        gwx.add_transposed_matmul_blocked(&inp_s, 0, &dzx_s, 0, len, &mut col4);
        if len > 1 {
            gather_sample(batch, slot, hidden_packed, &mut hid_s);
            let dzh = if same_dz {
                &dzx_s
            } else {
                gather_sample(batch, slot, dzh_packed, &mut dzh_s);
                &dzh_s
            };
            gwh.add_transposed_matmul_blocked(&hid_s, 0, dzh, 1, len - 1, &mut col4);
        }
    }
    ws.put_mat("batch.col4", col4);
    ws.put_mat("batch.dzh_s", dzh_s);
    ws.put_mat("batch.dzx_s", dzx_s);
    ws.put_mat("batch.hid_s", hid_s);
    ws.put_mat("batch.inp_s", inp_s);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamped_constructor_pads_zero_lengths() {
        let b = SeqBatch::from_lengths_clamped(&[3, 0, 2]);
        assert_eq!(b.n_samples(), 3);
        assert_eq!(b.len_at(b.slot_of(1)), 1);
        // Identical layout to the same batch with an explicit pad step.
        let explicit = SeqBatch::from_lengths(&[3, 1, 2]);
        assert_eq!(b.total_rows(), explicit.total_rows());
        for orig in 0..3 {
            assert_eq!(b.slot_of(orig), explicit.slot_of(orig));
        }
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn clamped_constructor_still_rejects_empty_batch() {
        let _ = SeqBatch::from_lengths_clamped(&[]);
    }

    #[test]
    fn layout_of_mixed_lengths() {
        let b = SeqBatch::from_lengths(&[3, 1, 4, 1, 2]);
        assert_eq!(b.n_samples(), 5);
        assert_eq!(b.t_max(), 4);
        assert_eq!(b.total_rows(), 11);
        // Stable descending sort: 4 (orig 2), 3 (orig 0), 2 (orig 4),
        // then the two 1s in original order (orig 1, orig 3).
        assert_eq!(
            (0..5).map(|s| b.sample_at(s)).collect::<Vec<_>>(),
            vec![2, 0, 4, 1, 3]
        );
        for slot in 0..5 {
            assert_eq!(b.slot_of(b.sample_at(slot)), slot);
        }
        assert_eq!(
            (0..5).map(|s| b.len_at(s)).collect::<Vec<_>>(),
            vec![4, 3, 2, 1, 1]
        );
        assert_eq!(
            (0..4).map(|t| b.active(t)).collect::<Vec<_>>(),
            vec![5, 3, 2, 1]
        );
        assert_eq!(
            (0..4).map(|t| b.offset(t)).collect::<Vec<_>>(),
            vec![0, 5, 8, 10]
        );
        assert_eq!(b.row(1, 2), 9);
        assert!((b.occupancy() - 2.75).abs() < 1e-12);
    }

    #[test]
    fn uniform_lengths_are_rectangular() {
        let b = SeqBatch::from_lengths(&[3, 3, 3]);
        assert_eq!(b.total_rows(), 9);
        assert_eq!(
            (0..3).map(|s| b.sample_at(s)).collect::<Vec<_>>(),
            [0, 1, 2]
        );
        assert!((b.occupancy() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reverse_packed_reverses_each_sample() {
        let b = SeqBatch::from_lengths(&[2, 3]);
        // Packed rows tagged (orig, t) so the reversal is checkable.
        let mut packed = Matrix::zeros(b.total_rows(), 2);
        for orig in 0..2 {
            let slot = b.slot_of(orig);
            for t in 0..b.len_at(slot) {
                let r = b.row(slot, t);
                packed.row_mut(r).copy_from_slice(&[orig as f32, t as f32]);
            }
        }
        let mut rev = Matrix::default();
        b.reverse_packed_into(&packed, &mut rev);
        for orig in 0..2 {
            let slot = b.slot_of(orig);
            let len = b.len_at(slot);
            for t in 0..len {
                assert_eq!(
                    rev.row(b.row(slot, t)),
                    &[orig as f32, (len - 1 - t) as f32],
                    "sample {orig} step {t}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let _ = SeqBatch::from_lengths(&[]);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_panics() {
        let _ = SeqBatch::from_lengths(&[2, 0]);
    }
}
