//! LSTM cell (Hochreiter & Schmidhuber 1997) with full BPTT.
//!
//! The paper (§2) argues vanilla RNNs are sufficient for character-level
//! error detection and cheaper to train than LSTM/GRU; this cell exists
//! so the claim is *testable* — it plugs into the same [`crate::BiRnn`] /
//! [`crate::StackedBiRnn`] topology via [`Recurrence`], and the
//! `ablation_cells` bench compares all three on F1 and wall-clock.
//!
//! Gate layout in the fused weight matrices: `[input, forget, cell, output]`.

use crate::batch::{accumulate_seq_grads, SeqBatch};
use crate::rnn::{split_cell_grads, Recurrence};
use crate::Param;
use etsb_tensor::{init, KernelPolicy, Matrix, Workspace};
use rand::rngs::StdRng;

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// An LSTM cell with fused gate weights.
#[derive(Clone, Debug)]
pub struct LstmCell {
    /// Input weights, `input_dim x 4·hidden` (gates i, f, g, o).
    pub wx: Param,
    /// Recurrent weights, `hidden x 4·hidden`.
    pub wh: Param,
    /// Bias, `1 x 4·hidden` (forget-gate slice initialized to 1).
    pub b: Param,
    hidden: usize,
}

/// Cache from [`LstmCell::forward_seq`].
#[derive(Clone, Debug, Default)]
pub struct LstmCache {
    inputs: Matrix,
    /// Activated gates per step, `T x 4·hidden`: `[i, f, g, o]`.
    gates: Matrix,
    /// Cell states, `T x hidden`.
    cells: Matrix,
    /// `tanh(c_t)`, `T x hidden`.
    tanh_cells: Matrix,
    /// Hidden states (outputs), `T x hidden`.
    hidden: Matrix,
}

impl LstmCell {
    /// New cell: Glorot input/recurrent weights, forget bias 1.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        assert!(
            input_dim > 0 && hidden > 0,
            "LstmCell: dims must be positive"
        );
        let mut b = Matrix::zeros(1, 4 * hidden);
        for j in hidden..2 * hidden {
            b[(0, j)] = 1.0; // standard forget-gate bias init
        }
        Self {
            wx: Param::new(init::glorot_uniform(input_dim, 4 * hidden, rng)),
            wh: Param::new(init::glorot_uniform(hidden, 4 * hidden, rng)),
            b: Param::new(b),
            hidden,
        }
    }
}

impl Recurrence for LstmCell {
    type Cache = LstmCache;

    fn with_dims(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        LstmCell::new(input_dim, hidden, rng)
    }

    fn input_dim(&self) -> usize {
        self.wx.value.rows()
    }

    fn hidden_dim(&self) -> usize {
        self.hidden
    }

    fn forward_seq(&self, inputs: Matrix) -> (Matrix, LstmCache) {
        let t_max = inputs.rows();
        assert!(t_max > 0, "LstmCell::forward_seq: empty sequence");
        assert_eq!(
            inputs.cols(),
            self.input_dim(),
            "LstmCell: input width mismatch"
        );
        let h = self.hidden;
        let mut gates = Matrix::zeros(t_max, 4 * h);
        let mut cells = Matrix::zeros(t_max, h);
        let mut tanh_cells = Matrix::zeros(t_max, h);
        let mut hidden = Matrix::zeros(t_max, h);
        let mut h_prev = vec![0.0_f32; h];
        let mut c_prev = vec![0.0_f32; h];
        for t in 0..t_max {
            let mut z = self.wx.value.vecmat(inputs.row(t));
            let rec = self.wh.value.vecmat(&h_prev);
            for ((zi, &ri), &bi) in z.iter_mut().zip(&rec).zip(self.b.value.row(0)) {
                *zi += ri + bi;
            }
            let g_row = gates.row_mut(t);
            for j in 0..h {
                g_row[j] = sigmoid(z[j]); // i
                g_row[h + j] = sigmoid(z[h + j]); // f
                g_row[2 * h + j] = z[2 * h + j].tanh(); // g
                g_row[3 * h + j] = sigmoid(z[3 * h + j]); // o
            }
            let c_row = cells.row_mut(t);
            for j in 0..h {
                c_row[j] = g_row[h + j] * c_prev[j] + g_row[j] * g_row[2 * h + j];
            }
            let tc_row = tanh_cells.row_mut(t);
            let h_row = hidden.row_mut(t);
            for j in 0..h {
                tc_row[j] = c_row[j].tanh();
                h_row[j] = g_row[3 * h + j] * tc_row[j];
            }
            h_prev.copy_from_slice(h_row);
            c_prev.copy_from_slice(c_row);
        }
        let out = hidden.clone();
        (
            out,
            LstmCache {
                inputs,
                gates,
                cells,
                tanh_cells,
                hidden,
            },
        )
    }

    fn backward_seq(&self, cache: &LstmCache, grad_out: &Matrix, grads: &mut [Matrix]) -> Matrix {
        let t_max = cache.hidden.rows();
        let h = self.hidden;
        assert_eq!(
            grad_out.shape(),
            (t_max, h),
            "LstmCell::backward_seq: grad shape"
        );
        let (gwx, gwh, gb) = split_cell_grads(grads, "LstmCell::backward_seq");
        let mut dz_all = Matrix::zeros(t_max, 4 * h);
        let wht = self.wh.value.transpose();
        let mut dh_carry = vec![0.0_f32; h];
        let mut dc_carry = vec![0.0_f32; h];
        for t in (0..t_max).rev() {
            let gates = cache.gates.row(t);
            let tc = cache.tanh_cells.row(t);
            let dz = dz_all.row_mut(t);
            for j in 0..h {
                let (i, f, g, o) = (gates[j], gates[h + j], gates[2 * h + j], gates[3 * h + j]);
                let dh = grad_out.row(t)[j] + dh_carry[j];
                let do_ = dh * tc[j];
                let dc = dh * o * (1.0 - tc[j] * tc[j]) + dc_carry[j];
                let c_prev = if t > 0 {
                    cache.cells.row(t - 1)[j]
                } else {
                    0.0
                };
                dz[j] = dc * g * i * (1.0 - i); // input gate
                dz[h + j] = dc * c_prev * f * (1.0 - f); // forget gate
                dz[2 * h + j] = dc * i * (1.0 - g * g); // candidate
                dz[3 * h + j] = do_ * o * (1.0 - o); // output gate
                dc_carry[j] = dc * f;
            }
            etsb_tensor::add_assign(gb.row_mut(0), dz_all.row(t));
            dh_carry = wht.vecmat(dz_all.row(t));
        }
        // Weight gradients batched over the whole sequence: bitwise
        // identical to ascending per-step `add_outer` calls (and therefore
        // to `backward_seq_into`, which uses the same kernels).
        let mut col = Vec::new();
        gwx.add_transposed_matmul(&cache.inputs, 0, &dz_all, 0, t_max, &mut col);
        if t_max > 1 {
            gwh.add_transposed_matmul(&cache.hidden, 0, &dz_all, 1, t_max - 1, &mut col);
        }
        dz_all.matmul(&self.wx.value.transpose())
    }

    fn forward_seq_into(&self, inputs: &Matrix, cache: &mut LstmCache, ws: &mut Workspace) {
        let t_max = inputs.rows();
        assert!(t_max > 0, "LstmCell::forward_seq: empty sequence");
        assert_eq!(
            inputs.cols(),
            self.input_dim(),
            "LstmCell: input width mismatch"
        );
        let h = self.hidden;
        cache.inputs.copy_from(inputs);
        cache.gates.resize_zeroed(t_max, 4 * h);
        cache.cells.resize_zeroed(t_max, h);
        cache.tanh_cells.resize_zeroed(t_max, h);
        cache.hidden.resize_zeroed(t_max, h);
        let mut z_all = ws.take_mat("lstm.z_all", 0, 0);
        inputs.matmul_into(&self.wx.value, &mut z_all);
        let mut rec = ws.take_vec("lstm.rec", 4 * h);
        let mut h_prev = ws.take_vec("lstm.h_prev", h);
        let mut c_prev = ws.take_vec("lstm.c_prev", h);
        for t in 0..t_max {
            self.wh.value.vecmat_into(&h_prev, &mut rec);
            let z = z_all.row_mut(t);
            for ((zi, &ri), &bi) in z.iter_mut().zip(&rec).zip(self.b.value.row(0)) {
                *zi += ri + bi;
            }
            let z = z_all.row(t);
            let g_row = cache.gates.row_mut(t);
            for j in 0..h {
                g_row[j] = sigmoid(z[j]); // i
                g_row[h + j] = sigmoid(z[h + j]); // f
                g_row[2 * h + j] = z[2 * h + j].tanh(); // g
                g_row[3 * h + j] = sigmoid(z[3 * h + j]); // o
            }
            let c_row = cache.cells.row_mut(t);
            let g_row = cache.gates.row(t);
            for j in 0..h {
                c_row[j] = g_row[h + j] * c_prev[j] + g_row[j] * g_row[2 * h + j];
            }
            let c_row = cache.cells.row(t);
            let tc_row = cache.tanh_cells.row_mut(t);
            for j in 0..h {
                tc_row[j] = c_row[j].tanh();
            }
            let tc_row = cache.tanh_cells.row(t);
            let h_row = cache.hidden.row_mut(t);
            for j in 0..h {
                h_row[j] = g_row[3 * h + j] * tc_row[j];
            }
            h_prev.copy_from_slice(h_row);
            c_prev.copy_from_slice(c_row);
        }
        ws.put_vec("lstm.c_prev", c_prev);
        ws.put_vec("lstm.h_prev", h_prev);
        ws.put_vec("lstm.rec", rec);
        ws.put_mat("lstm.z_all", z_all);
    }

    fn seq_output(cache: &LstmCache) -> &Matrix {
        &cache.hidden
    }

    fn backward_seq_into(
        &self,
        cache: &LstmCache,
        grad_out: &Matrix,
        grads: &mut [Matrix],
        grad_inputs: &mut Matrix,
        ws: &mut Workspace,
    ) {
        let t_max = cache.hidden.rows();
        let h = self.hidden;
        assert_eq!(
            grad_out.shape(),
            (t_max, h),
            "LstmCell::backward_seq_into: grad shape"
        );
        let (gwx, gwh, gb) = split_cell_grads(grads, "LstmCell::backward_seq_into");
        let mut dz_all = ws.take_mat("lstm.dz_all", t_max, 4 * h);
        let mut wht = ws.take_mat("lstm.wht", 0, 0);
        self.wh.value.transpose_into(&mut wht);
        let mut dh_carry = ws.take_vec("lstm.dh_carry", h);
        let mut dc_carry = ws.take_vec("lstm.dc_carry", h);
        for t in (0..t_max).rev() {
            let gates = cache.gates.row(t);
            let tc = cache.tanh_cells.row(t);
            let dz = dz_all.row_mut(t);
            for j in 0..h {
                let (i, f, g, o) = (gates[j], gates[h + j], gates[2 * h + j], gates[3 * h + j]);
                let dh = grad_out.row(t)[j] + dh_carry[j];
                let do_ = dh * tc[j];
                let dc = dh * o * (1.0 - tc[j] * tc[j]) + dc_carry[j];
                let c_prev = if t > 0 {
                    cache.cells.row(t - 1)[j]
                } else {
                    0.0
                };
                dz[j] = dc * g * i * (1.0 - i); // input gate
                dz[h + j] = dc * c_prev * f * (1.0 - f); // forget gate
                dz[2 * h + j] = dc * i * (1.0 - g * g); // candidate
                dz[3 * h + j] = do_ * o * (1.0 - o); // output gate
                dc_carry[j] = dc * f;
            }
            let dz = dz_all.row(t);
            etsb_tensor::add_assign(gb.row_mut(0), dz);
            wht.vecmat_into(dz, &mut dh_carry);
        }
        // Weight gradients batched over the whole sequence: bitwise
        // identical to ascending per-step `add_outer` calls.
        let mut col = ws.take_vec("lstm.col", 0);
        gwx.add_transposed_matmul(&cache.inputs, 0, &dz_all, 0, t_max, &mut col);
        if t_max > 1 {
            gwh.add_transposed_matmul(&cache.hidden, 0, &dz_all, 1, t_max - 1, &mut col);
        }
        let mut wxt = ws.take_mat("lstm.wxt", 0, 0);
        self.wx.value.transpose_into(&mut wxt);
        dz_all.matmul_into(&wxt, grad_inputs);
        ws.put_mat("lstm.wxt", wxt);
        ws.put_mat("lstm.wht", wht);
        ws.put_vec("lstm.col", col);
        ws.put_vec("lstm.dc_carry", dc_carry);
        ws.put_vec("lstm.dh_carry", dh_carry);
        ws.put_mat("lstm.dz_all", dz_all);
    }

    fn forward_batch_into(
        &self,
        packed: &Matrix,
        batch: &SeqBatch,
        cache: &mut LstmCache,
        ws: &mut Workspace,
        policy: KernelPolicy,
    ) {
        let total = batch.total_rows();
        assert_eq!(
            packed.shape(),
            (total, self.input_dim()),
            "LstmCell::forward_batch_into: packed shape"
        );
        let h = self.hidden;
        cache.inputs.copy_from(packed);
        cache.gates.resize_zeroed(total, 4 * h);
        cache.cells.resize_zeroed(total, h);
        cache.tanh_cells.resize_zeroed(total, h);
        cache.hidden.resize_zeroed(total, h);
        let mut z_all = ws.take_mat("lstm.bz_all", 0, 0);
        packed.matmul_window_policy_into(0, packed.rows(), &self.wx.value, &mut z_all, policy);
        let mut rec = ws.take_mat("lstm.brec", 0, 0);
        let mut c_prev = ws.take_mat("lstm.bc_prev", 0, 0);
        for t in 0..batch.t_max() {
            let off = batch.offset(t);
            let n_act = batch.active(t);
            c_prev.resize_zeroed(n_act, h);
            if t == 0 {
                // First step: recurrent term of a zero state is zero, same
                // as `vecmat` against a fresh zero vector per sample.
                rec.resize_zeroed(n_act, 4 * h);
            } else {
                let prev_off = batch.offset(t - 1);
                cache.hidden.matmul_window_policy_into(
                    prev_off,
                    n_act,
                    &self.wh.value,
                    &mut rec,
                    policy,
                );
                for s in 0..n_act {
                    c_prev
                        .row_mut(s)
                        .copy_from_slice(cache.cells.row(prev_off + s));
                }
            }
            for s in 0..n_act {
                let z = z_all.row_mut(off + s);
                for ((zi, &ri), &bi) in z.iter_mut().zip(rec.row(s)).zip(self.b.value.row(0)) {
                    *zi += ri + bi;
                }
                let z = z_all.row(off + s);
                let g_row = cache.gates.row_mut(off + s);
                for j in 0..h {
                    g_row[j] = sigmoid(z[j]); // i
                    g_row[h + j] = sigmoid(z[h + j]); // f
                    g_row[2 * h + j] = z[2 * h + j].tanh(); // g
                    g_row[3 * h + j] = sigmoid(z[3 * h + j]); // o
                }
                let c_row = cache.cells.row_mut(off + s);
                let g_row = cache.gates.row(off + s);
                let cp = c_prev.row(s);
                for j in 0..h {
                    c_row[j] = g_row[h + j] * cp[j] + g_row[j] * g_row[2 * h + j];
                }
                let c_row = cache.cells.row(off + s);
                let tc_row = cache.tanh_cells.row_mut(off + s);
                for j in 0..h {
                    tc_row[j] = c_row[j].tanh();
                }
                let tc_row = cache.tanh_cells.row(off + s);
                let h_row = cache.hidden.row_mut(off + s);
                for j in 0..h {
                    h_row[j] = g_row[3 * h + j] * tc_row[j];
                }
            }
        }
        ws.put_mat("lstm.bc_prev", c_prev);
        ws.put_mat("lstm.brec", rec);
        ws.put_mat("lstm.bz_all", z_all);
    }

    fn backward_batch_into(
        &self,
        batch: &SeqBatch,
        cache: &LstmCache,
        grad_out: &Matrix,
        grads: &mut [Matrix],
        grad_inputs: &mut Matrix,
        ws: &mut Workspace,
    ) {
        let total = batch.total_rows();
        let h = self.hidden;
        assert_eq!(
            grad_out.shape(),
            (total, h),
            "LstmCell::backward_batch_into: grad shape"
        );
        let mut dz_all = ws.take_mat("lstm.bdz_all", total, 4 * h);
        let mut wht = ws.take_mat("lstm.wht", 0, 0);
        self.wh.value.transpose_into(&mut wht);
        let mut dh_carry = ws.take_mat("lstm.bdh_carry", 0, 0);
        // One cell-state carry row per slot, zeroed on take: a sample's
        // first (latest-t) visit reads zeros, exactly like the fresh
        // per-sample `dc_carry` vector.
        let mut dc_carry = ws.take_mat("lstm.bdc_carry", batch.n_samples(), h);
        let zero = ws.take_vec("batch.zero", h);
        for t in (0..batch.t_max()).rev() {
            let off = batch.offset(t);
            let n_act = batch.active(t);
            // Rows past `carried` just retired at this step: their hidden
            // carry is the per-sample fresh zero vector.
            let carried = if t + 1 < batch.t_max() {
                batch.active(t + 1)
            } else {
                0
            };
            for s in 0..n_act {
                let gates = cache.gates.row(off + s);
                let tc = cache.tanh_cells.row(off + s);
                let carry: &[f32] = if s < carried { dh_carry.row(s) } else { &zero };
                let dcc = dc_carry.row_mut(s);
                let dz = dz_all.row_mut(off + s);
                for j in 0..h {
                    let (i, f, g, o) = (gates[j], gates[h + j], gates[2 * h + j], gates[3 * h + j]);
                    let dh = grad_out.row(off + s)[j] + carry[j];
                    let do_ = dh * tc[j];
                    let dc = dh * o * (1.0 - tc[j] * tc[j]) + dcc[j];
                    let c_prev = if t > 0 {
                        cache.cells.row(batch.offset(t - 1) + s)[j]
                    } else {
                        0.0
                    };
                    dz[j] = dc * g * i * (1.0 - i); // input gate
                    dz[h + j] = dc * c_prev * f * (1.0 - f); // forget gate
                    dz[2 * h + j] = dc * i * (1.0 - g * g); // candidate
                    dz[3 * h + j] = do_ * o * (1.0 - o); // output gate
                    dcc[j] = dc * f;
                }
            }
            if t > 0 {
                dz_all.matmul_window_into(off, n_act, &wht, &mut dh_carry);
            }
        }
        // Replay weight/bias gradients per sample in original batch order;
        // bitwise identical to the per-sample `backward_seq_into` calls.
        accumulate_seq_grads(
            batch,
            &cache.inputs,
            &cache.hidden,
            &dz_all,
            &dz_all,
            grads,
            ws,
        );
        let mut wxt = ws.take_mat("lstm.wxt", 0, 0);
        self.wx.value.transpose_into(&mut wxt);
        dz_all.matmul_window_into(0, dz_all.rows(), &wxt, grad_inputs);
        ws.put_mat("lstm.wxt", wxt);
        ws.put_vec("batch.zero", zero);
        ws.put_mat("lstm.bdc_carry", dc_carry);
        ws.put_mat("lstm.bdh_carry", dh_carry);
        ws.put_mat("lstm.wht", wht);
        ws.put_mat("lstm.bdz_all", dz_all);
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.wx, &self.wh, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_tensor::init::seeded_rng;

    #[test]
    fn forward_shapes_and_bounds() {
        let cell = LstmCell::new(3, 5, &mut seeded_rng(1));
        let x = Matrix::from_fn(7, 3, |i, j| ((i + j) as f32 * 0.4).sin());
        let (out, cache) = cell.forward_seq(x);
        assert_eq!(out.shape(), (7, 5));
        // h = o * tanh(c): bounded by (0,1)*(-1,1).
        assert!(out.as_slice().iter().all(|&v| v.abs() < 1.0));
        assert_eq!(cache.gates.shape(), (7, 20));
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let cell = LstmCell::new(2, 4, &mut seeded_rng(2));
        for j in 4..8 {
            assert_eq!(cell.b.value[(0, j)], 1.0);
        }
        assert_eq!(cell.b.value[(0, 0)], 0.0);
    }

    #[test]
    fn state_propagates_across_steps() {
        let cell = LstmCell::new(2, 4, &mut seeded_rng(3));
        let constant = Matrix::from_fn(3, 2, |_, _| 0.5);
        let (out, _) = cell.forward_seq(constant);
        assert_ne!(out.row(0), out.row(1));
        assert_ne!(out.row(1), out.row(2));
    }

    /// Central-difference gradient check through the full LSTM BPTT.
    #[test]
    fn gradient_check() {
        let cell = LstmCell::new(2, 3, &mut seeded_rng(4));
        let x = Matrix::from_fn(4, 2, |i, j| ((i * 2 + j) as f32 * 0.63).cos() * 0.5);

        let loss = |c: &LstmCell, x: &Matrix| c.forward_seq(x.clone()).0.sum();

        let (out, cache) = cell.forward_seq(x.clone());
        let ones = Matrix::full(out.rows(), out.cols(), 1.0);
        let mut grads = crate::param::grad_buffer_for(&cell.params());
        let grad_in = cell.backward_seq(&cache, &ones, grads.slots_mut());

        let h = 1e-3_f32;
        // Sample coordinates from each gate block of each parameter.
        for pi in 0..3 {
            let cols = cell.params()[pi].value.cols();
            for block in 0..4 {
                let coords = (0, block * (cols / 4) + 1);
                let analytic = grads.slot(pi)[coords];
                let mut plus = cell.clone();
                plus.params_mut()[pi].value[coords] += h;
                let mut minus = cell.clone();
                minus.params_mut()[pi].value[coords] -= h;
                let numeric = (loss(&plus, &x) - loss(&minus, &x)) / (2.0 * h);
                assert!(
                    (numeric - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
                    "param {pi} block {block}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
        // Input gradient.
        let analytic = grad_in[(2, 1)];
        let mut xp = x.clone();
        xp[(2, 1)] += h;
        let mut xm = x.clone();
        xm[(2, 1)] -= h;
        let numeric = (loss(&cell, &xp) - loss(&cell, &xm)) / (2.0 * h);
        assert!(
            (numeric - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
            "input grad: numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn works_inside_stacked_birnn() {
        use crate::StackedBiRnn;
        let net: StackedBiRnn<LstmCell> = StackedBiRnn::new(3, 4, &mut seeded_rng(5));
        let x = Matrix::from_fn(5, 3, |i, j| (i as f32 - j as f32) * 0.2);
        let (out, _) = net.forward(x);
        assert_eq!(out.len(), 8);
        assert_eq!(net.params().len(), 12);
    }
}
