//! Trainable parameter and the gradient-buffer plumbing around it.
//!
//! Parameters hold *weights only*: gradients live in an explicit, separate
//! [`GradBuffer`] with one slot per parameter (same stable order as the
//! model's `params()`), so backward passes can run on `&self` and shard
//! across threads, accumulating into per-thread buffers that merge
//! deterministically.

use etsb_tensor::{GradBuffer, Matrix};

/// A trainable parameter (weights only; see [`grad_buffer_for`] for the
/// matching gradient storage).
#[derive(Clone, Debug)]
pub struct Param {
    /// Current weight values.
    pub value: Matrix,
}

impl Param {
    /// Wrap an initialized weight matrix.
    pub fn new(value: Matrix) -> Self {
        Self { value }
    }

    /// Number of scalar weights.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter holds no weights.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// Build a zeroed [`GradBuffer`] with one slot per parameter, shaped to
/// match. Slot `i` accumulates the gradient of `params[i]`.
pub fn grad_buffer_for(params: &[&Param]) -> GradBuffer {
    GradBuffer::from_shapes(params.iter().map(|p| p.value.shape()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_reports_size() {
        let p = Param::new(Matrix::full(3, 4, 1.5));
        assert_eq!(p.len(), 12);
        assert!(!p.is_empty());
    }

    #[test]
    fn grad_buffer_matches_param_shapes() {
        let a = Param::new(Matrix::zeros(2, 3));
        let b = Param::new(Matrix::zeros(1, 5));
        let g = grad_buffer_for(&[&a, &b]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.slot(0).shape(), (2, 3));
        assert_eq!(g.slot(1).shape(), (1, 5));
        assert_eq!(g.slot(0).sum() + g.slot(1).sum(), 0.0);
    }
}
