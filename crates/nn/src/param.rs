//! Trainable parameter: a weight matrix paired with its gradient
//! accumulator.

use etsb_tensor::Matrix;

/// A trainable parameter.
///
/// `grad` always has the same shape as `value`; `backward` passes
/// *accumulate* into it (so one optimizer step can integrate gradients
/// from every sample of a mini-batch) and the trainer clears it between
/// steps with [`Param::zero_grad`].
#[derive(Clone, Debug)]
pub struct Param {
    /// Current weight values.
    pub value: Matrix,
    /// Accumulated gradient of the loss w.r.t. `value`.
    pub grad: Matrix,
}

impl Param {
    /// Wrap an initialized weight matrix with a zeroed gradient.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self { value, grad }
    }

    /// Reset the gradient accumulator to zero, keeping its allocation.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar weights.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter holds no weights.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_zeroes_grad_with_matching_shape() {
        let p = Param::new(Matrix::full(3, 4, 1.5));
        assert_eq!(p.grad.shape(), (3, 4));
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.len(), 12);
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        p.grad.as_mut_slice().fill(3.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
