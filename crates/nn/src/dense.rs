//! Fully connected layer with an element-wise activation.

use crate::{Activation, Param};
use etsb_tensor::{init, Matrix};
use rand::rngs::StdRng;

/// A dense layer: `y = act(x W + b)` applied row-wise to a batch.
#[derive(Clone, Debug)]
pub struct Dense {
    /// Weights, `input_dim x output_dim`.
    pub w: Param,
    /// Bias, `1 x output_dim`.
    pub b: Param,
    /// Element-wise activation.
    pub activation: Activation,
}

/// Cache from [`Dense::forward`]: owns the inputs and outputs needed by
/// the backward pass.
#[derive(Clone, Debug)]
pub struct DenseCache {
    inputs: Matrix,
    outputs: Matrix,
}

impl Dense {
    /// New dense layer with Glorot-uniform weights and zero bias.
    pub fn new(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            input_dim > 0 && output_dim > 0,
            "Dense: dims must be positive"
        );
        Self {
            w: Param::new(init::glorot_uniform(input_dim, output_dim, rng)),
            b: Param::new(Matrix::zeros(1, output_dim)),
            activation,
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Forward a batch (`N x input_dim` → `N x output_dim`).
    pub fn forward(&self, inputs: Matrix) -> (Matrix, DenseCache) {
        assert_eq!(
            inputs.cols(),
            self.input_dim(),
            "Dense::forward: input width {} != {}",
            inputs.cols(),
            self.input_dim()
        );
        let mut out = inputs.matmul(&self.w.value);
        let bias = self.b.value.row(0);
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (o, &bi) in row.iter_mut().zip(bias) {
                *o = self.activation.apply(*o + bi);
            }
        }
        out.assert_finite("dense", "forward(activation)");
        (
            out.clone(),
            DenseCache {
                inputs,
                outputs: out,
            },
        )
    }

    /// Inference-only forward into a preallocated matrix: no cache, no
    /// input clone, no allocation once `out`'s capacity suffices. Bitwise
    /// identical to the output of [`Dense::forward`].
    pub fn forward_eval_into(&self, inputs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            inputs.cols(),
            self.input_dim(),
            "Dense::forward_eval_into: input width {} != {}",
            inputs.cols(),
            self.input_dim()
        );
        inputs.matmul_into(&self.w.value, out);
        let bias = self.b.value.row(0);
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (o, &bi) in row.iter_mut().zip(bias) {
                *o = self.activation.apply(*o + bi);
            }
        }
        out.assert_finite("dense", "forward(activation)");
    }

    /// Backward a batch: accumulates weight/bias grads into `grads`
    /// (slots `[w, b]` in [`Dense::params`] order), returns the input
    /// gradient (`N x input_dim`).
    pub fn backward(&self, cache: &DenseCache, grad_out: &Matrix, grads: &mut [Matrix]) -> Matrix {
        assert_eq!(
            grad_out.shape(),
            cache.outputs.shape(),
            "Dense::backward: grad shape {:?} != output shape {:?}",
            grad_out.shape(),
            cache.outputs.shape()
        );
        assert_eq!(grads.len(), 2, "Dense::backward: expected 2 slots (w, b)");
        let (gw, gb) = grads.split_at_mut(1);
        let (gw, gb) = (&mut gw[0], &mut gb[0]);
        // dz = grad_out * act'(y)
        let mut dz = grad_out.clone();
        for r in 0..dz.rows() {
            let y = cache.outputs.row(r);
            for (d, &yi) in dz.row_mut(r).iter_mut().zip(y) {
                *d *= self.activation.derivative_from_output(yi);
            }
        }
        // dW = X^T dz ; db = column sums of dz ; dX = dz W^T
        gw.add_assign(&cache.inputs.transposed_matmul(&dz));
        for r in 0..dz.rows() {
            etsb_tensor::add_assign(gb.row_mut(0), dz.row(r));
        }
        gw.assert_finite("dense", "backward(weight-grad)");
        let grad_in = dz.matmul_transposed(&self.w.value);
        grad_in.assert_finite("dense", "backward(grad-in)");
        grad_in
    }

    /// Parameters in stable order.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.w, &self.b]
    }

    /// Mutable parameters in the same order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_tensor::init::seeded_rng;

    #[test]
    fn forward_linear_matches_manual_product() {
        let mut rng = seeded_rng(1);
        let mut layer = Dense::new(2, 3, Activation::Linear, &mut rng);
        layer.w.value = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, -1.0]]);
        layer.b.value = Matrix::from_rows(&[&[0.5, 0.5, 0.5]]);
        let (out, _) = layer.forward(Matrix::from_rows(&[&[1.0, 2.0]]));
        assert_eq!(out, Matrix::from_rows(&[&[1.5, 2.5, 0.5]]));
    }

    #[test]
    fn relu_clamps_outputs() {
        let mut rng = seeded_rng(2);
        let mut layer = Dense::new(1, 2, Activation::Relu, &mut rng);
        layer.w.value = Matrix::from_rows(&[&[1.0, -1.0]]);
        let (out, _) = layer.forward(Matrix::from_rows(&[&[3.0]]));
        assert_eq!(out, Matrix::from_rows(&[&[3.0, 0.0]]));
    }

    #[test]
    fn gradient_check_all_activations() {
        for act in [Activation::Linear, Activation::Tanh, Activation::Relu] {
            let mut rng = seeded_rng(3);
            let layer = Dense::new(3, 2, act, &mut rng);
            let x = Matrix::from_fn(4, 3, |i, j| ((i * 3 + j) as f32 * 0.31).sin());

            let loss = |l: &Dense| l.forward(x.clone()).0.sum();

            let (out, cache) = layer.forward(x.clone());
            let ones = Matrix::full(out.rows(), out.cols(), 1.0);
            let mut grads = crate::param::grad_buffer_for(&layer.params());
            let grad_in = layer.backward(&cache, &ones, grads.slots_mut());

            let h = 1e-3_f32;
            for (pi, coords) in [(0usize, (1usize, 1usize)), (1, (0, 0))] {
                let analytic = grads.slot(pi)[coords];
                let mut plus = layer.clone();
                plus.params_mut()[pi].value[coords] += h;
                let mut minus = layer.clone();
                minus.params_mut()[pi].value[coords] -= h;
                let numeric = (loss(&plus) - loss(&minus)) / (2.0 * h);
                assert!(
                    (numeric - analytic).abs() < 1e-2 * analytic.abs().max(1.0),
                    "{act:?} param {pi}: numeric {numeric} vs analytic {analytic}"
                );
            }
            // Input gradient.
            let analytic = grad_in[(2, 1)];
            let mut xp = x.clone();
            xp[(2, 1)] += h;
            let mut xm = x.clone();
            xm[(2, 1)] -= h;
            let numeric = (layer.forward(xp).0.sum() - layer.forward(xm).0.sum()) / (2.0 * h);
            assert!(
                (numeric - analytic).abs() < 1e-2 * analytic.abs().max(1.0),
                "{act:?} input grad: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn batch_rows_are_independent() {
        let mut rng = seeded_rng(4);
        let layer = Dense::new(2, 2, Activation::Tanh, &mut rng);
        let (one, _) = layer.forward(Matrix::from_rows(&[&[0.3, -0.2]]));
        let (two, _) = layer.forward(Matrix::from_rows(&[&[9.0, 9.0], &[0.3, -0.2]]));
        assert!(etsb_tensor::max_abs_diff(one.row(0), two.row(1)) < 1e-7);
    }
}
