//! # etsb-nn
//!
//! A minimal neural-network framework purpose-built for the ETSB-RNN error
//! detector (Holzer & Stockinger, EDBT 2022). The paper's reference
//! implementation uses Keras; mature Rust bindings for RNN *training*
//! pipelines do not exist, so this crate implements the required layer zoo
//! from scratch with hand-rolled backpropagation:
//!
//! * [`Embedding`] — trainable character / attribute embeddings,
//! * [`RnnCell`] / [`BiRnn`] / [`StackedBiRnn`] — vanilla (Elman) recurrent
//!   cells with tanh activations and full backpropagation-through-time,
//!   including the two-stacked bidirectional configuration of §4.3,
//! * [`Dense`] — fully connected layers with linear/ReLU/tanh activations,
//! * [`BatchNorm`] — batch normalization with train/eval modes,
//! * [`softmax_cross_entropy`] — the fused softmax + cross-entropy loss,
//! * [`Rmsprop`] / [`Sgd`] / [`Adam`] — optimizers ([`Rmsprop`] is what the
//!   paper trains with),
//! * checkpointing ([`snapshot`] / [`restore`]) for the paper's
//!   best-training-loss weight callback,
//! * [`gradcheck`] — central-difference gradient verification used by the
//!   test-suite to prove every `backward` agrees with its `forward`.
//!
//! Layers follow a *cache-out* convention: `forward` returns the output
//! plus an explicit cache value, and `backward` consumes that cache while
//! accumulating parameter gradients into an explicit [`GradBuffer`] (see
//! [`grad_buffer_for`]) rather than into the layer itself. Layers are
//! therefore free of hidden mutable state: the same layer object can
//! evaluate many samples concurrently during inference *and* run backward
//! passes on `&self` across threads, each thread filling its own buffer,
//! merged deterministically afterwards (see [`parallel`]).

#![warn(missing_docs)]

mod activation;
mod batch;
mod batchnorm;
mod dense;
mod embedding;
mod gru;
mod loss;
mod lstm;
mod optim;
mod param;
mod rnn;

pub mod checkpoint;
pub mod gradcheck;
pub mod parallel;

pub use activation::Activation;
pub use batch::SeqBatch;
pub use batchnorm::{BatchNorm, BatchNormCache};
pub use checkpoint::{restore, snapshot, CheckpointError};
pub use dense::{Dense, DenseCache};
pub use embedding::{Embedding, EmbeddingCache};
pub use etsb_tensor::{GradBuffer, KernelPolicy};
pub use gru::{GruCache, GruCell};
pub use loss::{binary_cross_entropy, softmax_cross_entropy, LossOutput};
pub use lstm::{LstmCache, LstmCell};
pub use optim::{Adam, Optimizer, Rmsprop, Sgd};
pub use param::{grad_buffer_for, Param};
pub use rnn::{BiRnn, BiRnnCache, Recurrence, RnnCache, RnnCell, StackedBiRnn, StackedBiRnnCache};
