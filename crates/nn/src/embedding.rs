//! Trainable lookup-table embedding (§3.1 of the paper).
//!
//! Index `0` is reserved as the padding symbol by the data-preparation
//! pipeline; it embeds like any other row, matching Keras'
//! `Embedding(mask_zero=False)` default that the reference implementation
//! uses (the RNN in this workspace never reaches padding positions because
//! sequences run to their true length, but attribute ids may legitimately
//! be 0).

use crate::batch::SeqBatch;
use crate::Param;
use etsb_tensor::{init, Matrix};
use rand::rngs::StdRng;

/// A `vocab_size x dim` trainable embedding table.
#[derive(Clone, Debug)]
pub struct Embedding {
    weights: Param,
}

/// Cache produced by [`Embedding::forward`]: the looked-up indices.
#[derive(Clone, Debug, Default)]
pub struct EmbeddingCache {
    ids: Vec<usize>,
}

impl Embedding {
    /// New embedding with Glorot-uniform rows.
    ///
    /// # Panics
    /// If `vocab_size` or `dim` is zero.
    pub fn new(vocab_size: usize, dim: usize, rng: &mut StdRng) -> Self {
        assert!(vocab_size > 0, "Embedding: vocab_size must be positive");
        assert!(dim > 0, "Embedding: dim must be positive");
        Self {
            weights: Param::new(init::glorot_uniform(vocab_size, dim, rng)),
        }
    }

    /// Vocabulary size (number of rows).
    pub fn vocab_size(&self) -> usize {
        self.weights.value.rows()
    }

    /// Embedding dimension (number of columns).
    pub fn dim(&self) -> usize {
        self.weights.value.cols()
    }

    /// Look up `ids`, producing a `len(ids) x dim` matrix.
    ///
    /// # Panics
    /// If any id is out of vocabulary.
    pub fn forward(&self, ids: &[usize]) -> (Matrix, EmbeddingCache) {
        let dim = self.dim();
        let vocab = self.vocab_size();
        let mut out = Matrix::zeros(ids.len(), dim);
        for (row, &id) in ids.iter().enumerate() {
            assert!(
                id < vocab,
                "Embedding: id {id} out of vocabulary (size {vocab})"
            );
            out.row_mut(row).copy_from_slice(self.weights.value.row(id));
        }
        (out, EmbeddingCache { ids: ids.to_vec() })
    }

    /// Look up `ids` into a preallocated matrix (reshaped in place) — the
    /// allocation-free inference path. Bitwise identical to
    /// [`Embedding::forward`]'s output.
    ///
    /// # Panics
    /// If any id is out of vocabulary.
    pub fn lookup_into(&self, ids: &[usize], out: &mut Matrix) {
        let dim = self.dim();
        let vocab = self.vocab_size();
        out.resize_zeroed(ids.len(), dim);
        for (row, &id) in ids.iter().enumerate() {
            assert!(
                id < vocab,
                "Embedding: id {id} out of vocabulary (size {vocab})"
            );
            out.row_mut(row).copy_from_slice(self.weights.value.row(id));
        }
    }

    /// Allocation-free training forward: looks up into `out` and rebuilds
    /// `cache` in place (its id buffer is recycled across samples).
    // etsb: allow(into-shape-assert) -- thin delegation; lookup_into resizes `out` and asserts ids.
    pub fn forward_into(&self, ids: &[usize], out: &mut Matrix, cache: &mut EmbeddingCache) {
        self.lookup_into(ids, out);
        cache.ids.clear();
        cache.ids.extend_from_slice(ids);
    }

    /// Accumulate gradients for the rows selected in the cached forward
    /// pass into `grad` (a `vocab_size x dim` slot). `grad_out` must be
    /// `len(ids) x dim`.
    pub fn backward(&self, cache: &EmbeddingCache, grad_out: &Matrix, grad: &mut Matrix) {
        assert_eq!(
            grad_out.shape(),
            (cache.ids.len(), self.dim()),
            "Embedding::backward: gradient shape mismatch"
        );
        assert_eq!(
            grad.shape(),
            self.weights.value.shape(),
            "Embedding::backward: gradient slot shape mismatch"
        );
        for (row, &id) in cache.ids.iter().enumerate() {
            etsb_tensor::add_assign(grad.row_mut(id), grad_out.row(row));
        }
    }

    /// Look up a whole batch of id sequences into the packed timestep-major
    /// layout described by `batch`: row `batch.row(slot, t)` of `out` holds
    /// the embedding of step `t` of the sample in that slot. `seqs` is in
    /// **original** sample order (`seqs[orig]`), exactly as passed to
    /// [`SeqBatch::from_lengths`]. Pure row copies, so the packed rows are
    /// bitwise identical to per-sample [`Embedding::lookup_into`] output.
    ///
    /// A zero-length sequence is accepted when its slot holds one
    /// timestep (the [`SeqBatch::from_lengths_clamped`] layout): the
    /// missing step reads the pad row (index 0), exactly what the
    /// sequence would contain had the empty value been encoded normally.
    ///
    /// # Panics
    /// If a non-empty sequence's length disagrees with `batch` or any id
    /// is out of vocabulary.
    pub fn lookup_batch_into(&self, batch: &SeqBatch, seqs: &[&[usize]], out: &mut Matrix) {
        let dim = self.dim();
        let vocab = self.vocab_size();
        assert_eq!(
            seqs.len(),
            batch.n_samples(),
            "Embedding::lookup_batch_into: sample count mismatch"
        );
        out.resize_zeroed(batch.total_rows(), dim);
        for (orig, seq) in seqs.iter().enumerate() {
            let slot = batch.slot_of(orig);
            let len = batch.len_at(slot);
            assert!(
                seq.len() == len || (seq.is_empty() && len == 1),
                "Embedding::lookup_batch_into: sequence length mismatch"
            );
            for t in 0..len {
                let id = seq.get(t).copied().unwrap_or(0);
                assert!(
                    id < vocab,
                    "Embedding: id {id} out of vocabulary (size {vocab})"
                );
                out.row_mut(batch.row(slot, t))
                    .copy_from_slice(self.weights.value.row(id));
            }
        }
    }

    /// Accumulate table gradients for a packed batch lookup. Rows are
    /// replayed per sample in **original** order, each sample's steps
    /// ascending — the identical `add_assign` sequence the per-sample
    /// [`Embedding::backward`] calls would produce, so repeated-id rows
    /// accumulate bitwise identically.
    pub fn backward_batch(
        &self,
        batch: &SeqBatch,
        seqs: &[&[usize]],
        grad_packed: &Matrix,
        grad: &mut Matrix,
    ) {
        assert_eq!(
            grad_packed.shape(),
            (batch.total_rows(), self.dim()),
            "Embedding::backward_batch: gradient shape mismatch"
        );
        assert_eq!(
            grad.shape(),
            self.weights.value.shape(),
            "Embedding::backward_batch: gradient slot shape mismatch"
        );
        assert_eq!(
            seqs.len(),
            batch.n_samples(),
            "Embedding::backward_batch: sample count mismatch"
        );
        for (orig, seq) in seqs.iter().enumerate() {
            let slot = batch.slot_of(orig);
            // Mirror the forward's pad substitution: a clamped empty
            // sequence replays its single pad step into row 0.
            for t in 0..batch.len_at(slot) {
                let id = seq.get(t).copied().unwrap_or(0);
                etsb_tensor::add_assign(grad.row_mut(id), grad_packed.row(batch.row(slot, t)));
            }
        }
    }

    /// The underlying parameter (for optimizers / checkpoints).
    pub fn param(&self) -> &Param {
        &self.weights
    }

    /// Mutable access to the underlying parameter.
    pub fn param_mut(&mut self) -> &mut Param {
        &mut self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_tensor::init::seeded_rng;

    #[test]
    fn forward_selects_rows() {
        let mut rng = seeded_rng(1);
        let emb = Embedding::new(5, 3, &mut rng);
        let (out, _) = emb.forward(&[2, 2, 4]);
        assert_eq!(out.shape(), (3, 3));
        assert_eq!(out.row(0), emb.param().value.row(2));
        assert_eq!(out.row(1), emb.param().value.row(2));
        assert_eq!(out.row(2), emb.param().value.row(4));
    }

    #[test]
    fn backward_accumulates_repeated_ids() {
        let mut rng = seeded_rng(2);
        let emb = Embedding::new(4, 2, &mut rng);
        let (_, cache) = emb.forward(&[1, 1]);
        let grad_out = Matrix::from_rows(&[&[1.0, 0.5], &[2.0, 0.5]]);
        let mut grad = Matrix::zeros(4, 2);
        emb.backward(&cache, &grad_out, &mut grad);
        assert_eq!(grad.row(1), &[3.0, 1.0]);
        assert_eq!(grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn out_of_vocab_panics() {
        let mut rng = seeded_rng(3);
        let emb = Embedding::new(3, 2, &mut rng);
        let _ = emb.forward(&[3]);
    }

    #[test]
    fn empty_sequence_is_fine() {
        let mut rng = seeded_rng(4);
        let emb = Embedding::new(3, 2, &mut rng);
        let (out, _) = emb.forward(&[]);
        assert_eq!(out.shape(), (0, 2));
    }

    #[test]
    fn clamped_empty_sequence_reads_pad_row() {
        let mut rng = seeded_rng(5);
        let emb = Embedding::new(4, 3, &mut rng);
        let sb = SeqBatch::from_lengths_clamped(&[2, 0]);
        let seqs: Vec<&[usize]> = vec![&[1, 2], &[]];
        let mut packed = Matrix::default();
        emb.lookup_batch_into(&sb, &seqs, &mut packed);
        // Identical to encoding the empty value as one explicit pad token.
        let sb_pad = SeqBatch::from_lengths(&[2, 1]);
        let pad_seqs: Vec<&[usize]> = vec![&[1, 2], &[0]];
        let mut expect = Matrix::default();
        emb.lookup_batch_into(&sb_pad, &pad_seqs, &mut expect);
        assert_eq!(packed.shape(), expect.shape());
        for r in 0..packed.rows() {
            assert_eq!(packed.row(r), expect.row(r), "row {r}");
        }
    }

    #[test]
    fn clamped_empty_sequence_backward_matches_explicit_pad() {
        let mut rng = seeded_rng(6);
        let emb = Embedding::new(4, 2, &mut rng);
        let sb = SeqBatch::from_lengths_clamped(&[1, 0]);
        let grad_packed = Matrix::from_rows(&[&[1.0, 2.0], &[0.5, 0.25]]);
        let seqs: Vec<&[usize]> = vec![&[3], &[]];
        let mut grad = Matrix::zeros(4, 2);
        emb.backward_batch(&sb, &seqs, &grad_packed, &mut grad);
        let pad_seqs: Vec<&[usize]> = vec![&[3], &[0]];
        let mut expect = Matrix::zeros(4, 2);
        emb.backward_batch(&sb, &pad_seqs, &grad_packed, &mut expect);
        for r in 0..4 {
            assert_eq!(grad.row(r), expect.row(r), "row {r}");
        }
    }
}
