//! Central-difference gradient verification.
//!
//! Used throughout the test-suite (and available to downstream crates'
//! tests) to prove that a model's analytic `backward` agrees with the
//! numerical derivative of its `forward` loss.

/// Result of checking one coordinate.
#[derive(Clone, Copy, Debug)]
pub struct GradCheck {
    /// Analytic gradient reported by the backward pass.
    pub analytic: f32,
    /// Central-difference estimate.
    pub numeric: f32,
    /// `|analytic - numeric| / max(1, |analytic|, |numeric|)`.
    pub relative_error: f32,
}

impl GradCheck {
    /// True when the relative error is below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.relative_error <= tol
    }
}

/// Compare `analytic` against a central difference of `loss_at`, where
/// `loss_at(delta)` must evaluate the loss with the checked coordinate
/// perturbed by `delta`.
pub fn check_scalar(analytic: f32, h: f32, mut loss_at: impl FnMut(f32) -> f32) -> GradCheck {
    let numeric = (loss_at(h) - loss_at(-h)) / (2.0 * h);
    let denom = 1.0_f32.max(analytic.abs()).max(numeric.abs());
    GradCheck {
        analytic,
        numeric,
        relative_error: (analytic - numeric).abs() / denom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_checks_out() {
        // f(x) = x² at x = 3 → f'(3) = 6.
        let check = check_scalar(6.0, 1e-3, |d| (3.0 + d) * (3.0 + d));
        assert!(check.passes(1e-3), "{check:?}");
    }

    #[test]
    fn wrong_gradient_fails() {
        let check = check_scalar(5.0, 1e-3, |d| (3.0 + d) * (3.0 + d));
        assert!(!check.passes(1e-2), "{check:?}");
    }
}
