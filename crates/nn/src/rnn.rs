//! Vanilla (Elman) recurrent cells with backpropagation-through-time, and
//! the bidirectional / two-stacked configurations of the paper's §4.3.
//!
//! The recurrence implements equations (1)–(4) of the paper:
//!
//! ```text
//! z_t = Wx · x_t + Wh · h_{t-1} + b
//! h_t = tanh(z_t)
//! ```
//!
//! with row-vector convention (`h_t = tanh(x_t Wx + h_{t-1} Wh + b)`),
//! zero initial state, and full BPTT in `backward`.
//!
//! Sequences are processed at their *true* length (the data-preparation
//! pipeline guarantees at least one step), so no masking machinery is
//! needed and inference cost is proportional to actual value lengths.

use crate::batch::{accumulate_seq_grads, SeqBatch};
use crate::Param;
use etsb_tensor::{init, KernelPolicy, Matrix, Workspace};
use rand::rngs::StdRng;

/// Split a recurrent cell's 3-slot gradient slice into `(wx, wh, b)`,
/// matching the `params()` order every cell in this crate uses.
pub(crate) fn split_cell_grads<'g>(
    grads: &'g mut [Matrix],
    what: &str,
) -> (&'g mut Matrix, &'g mut Matrix, &'g mut Matrix) {
    assert_eq!(
        grads.len(),
        3,
        "{what}: expected 3 gradient slots (wx, wh, b), got {}",
        grads.len()
    );
    let (gwx, tail) = grads.split_at_mut(1);
    let (gwh, gb) = tail.split_at_mut(1);
    (&mut gwx[0], &mut gwh[0], &mut gb[0])
}

/// A recurrent cell usable inside [`BiRnn`] / [`StackedBiRnn`]: vanilla
/// ([`RnnCell`], the paper's choice), [`crate::LstmCell`] or
/// [`crate::GruCell`] (the heavier alternatives §2 argues against).
pub trait Recurrence: Clone {
    /// Cache produced by `forward`, consumed by `backward`. `Default`
    /// yields an empty cache that `forward_seq_into` rebuilds in place,
    /// so one cache allocation serves any number of samples.
    type Cache: Clone + std::fmt::Debug + Default;

    /// Construct a cell with freshly initialized weights.
    fn with_dims(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self;

    /// Input width.
    fn input_dim(&self) -> usize;

    /// Output (hidden-state) width.
    fn hidden_dim(&self) -> usize;

    /// Run the recurrence over a `T x input_dim` sequence, producing the
    /// `T x hidden` output sequence.
    fn forward_seq(&self, inputs: Matrix) -> (Matrix, Self::Cache);

    /// BPTT: gradients on every output step (`T x hidden`) in, parameter
    /// gradients accumulated into `grads` (one slot per parameter, in
    /// [`Recurrence::params`] order) + input gradients out.
    fn backward_seq(&self, cache: &Self::Cache, grad_out: &Matrix, grads: &mut [Matrix]) -> Matrix;

    /// Allocation-free forward: rebuild `cache` in place from `inputs`,
    /// borrowing every scratch buffer from `ws`. Bitwise identical to
    /// [`Recurrence::forward_seq`]; the output sequence is readable via
    /// [`Recurrence::seq_output`].
    fn forward_seq_into(&self, inputs: &Matrix, cache: &mut Self::Cache, ws: &mut Workspace);

    /// The `T x hidden` output sequence a `forward_seq_into` left in `cache`.
    fn seq_output(cache: &Self::Cache) -> &Matrix;

    /// Allocation-free BPTT companion of [`Recurrence::backward_seq`]:
    /// input gradients are written into `grad_inputs` (reshaped in place)
    /// instead of returned. Bitwise identical to `backward_seq`.
    fn backward_seq_into(
        &self,
        cache: &Self::Cache,
        grad_out: &Matrix,
        grads: &mut [Matrix],
        grad_inputs: &mut Matrix,
        ws: &mut Workspace,
    );

    /// Batched forward over a packed timestep-major batch (see
    /// [`SeqBatch`]): `packed` holds `batch.total_rows() x input_dim`
    /// rows, one timestep block after another, and `cache` is rebuilt
    /// with the same packed-row semantics ([`Recurrence::seq_output`]
    /// returns the packed hidden sequence). Under
    /// [`KernelPolicy::Exact`] every sample's rows are bitwise identical
    /// to running [`Recurrence::forward_seq_into`] on that sample alone;
    /// [`KernelPolicy::FastMath`] routes the dense window products
    /// through the fused inference kernels (epsilon-close, still
    /// deterministic for a fixed backend).
    fn forward_batch_into(
        &self,
        packed: &Matrix,
        batch: &SeqBatch,
        cache: &mut Self::Cache,
        ws: &mut Workspace,
        policy: KernelPolicy,
    );

    /// Batched BPTT companion of [`Recurrence::forward_batch_into`]:
    /// `grad_out` and `grad_inputs` use the packed layout, and parameter
    /// gradients are replayed per sample in original batch order, so the
    /// accumulated `grads` are bitwise identical to per-sample
    /// [`Recurrence::backward_seq_into`] calls in that order.
    fn backward_batch_into(
        &self,
        batch: &SeqBatch,
        cache: &Self::Cache,
        grad_out: &Matrix,
        grads: &mut [Matrix],
        grad_inputs: &mut Matrix,
        ws: &mut Workspace,
    );

    /// Parameters in a stable order.
    fn params(&self) -> Vec<&Param>;

    /// Mutable parameters in the same order.
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Number of parameter slots ([`Recurrence::params`] length) without
    /// allocating the vector: every cell carries exactly `wx`, `wh`, `b`.
    /// Used by the hot-path gradient-slot splits, which must stay
    /// allocation-free.
    fn n_params(&self) -> usize {
        3
    }
}

/// One directional vanilla RNN cell.
#[derive(Clone, Debug)]
pub struct RnnCell {
    /// Input-to-hidden weights, `input_dim x hidden`.
    pub wx: Param,
    /// Hidden-to-hidden weights, `hidden x hidden`.
    pub wh: Param,
    /// Bias, `1 x hidden`.
    pub b: Param,
}

/// Cache from [`RnnCell::forward`]: owns the inputs and the hidden-state
/// sequence (`hidden.row(t)` is `h_t`, which is also the layer output).
#[derive(Clone, Debug, Default)]
pub struct RnnCache {
    /// The `T x input_dim` input sequence.
    pub inputs: Matrix,
    /// The `T x hidden` hidden-state sequence (also the output).
    pub hidden: Matrix,
}

impl RnnCell {
    /// New cell with Glorot input weights and a near-identity recurrent
    /// matrix (see [`init::recurrent_init`]).
    pub fn new(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        assert!(
            input_dim > 0 && hidden > 0,
            "RnnCell: dims must be positive"
        );
        Self {
            wx: Param::new(init::glorot_uniform(input_dim, hidden, rng)),
            wh: Param::new(init::recurrent_init(hidden, rng)),
            b: Param::new(Matrix::zeros(1, hidden)),
        }
    }

    /// Hidden-state width.
    pub fn hidden_dim(&self) -> usize {
        self.wh.value.rows()
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.wx.value.rows()
    }

    /// Run the recurrence over `inputs` (`T x input_dim`, `T >= 1`).
    pub fn forward(&self, inputs: Matrix) -> RnnCache {
        let t_max = inputs.rows();
        assert!(t_max > 0, "RnnCell::forward: empty sequence");
        assert_eq!(
            inputs.cols(),
            self.input_dim(),
            "RnnCell::forward: input width {} != cell input dim {}",
            inputs.cols(),
            self.input_dim()
        );
        let h = self.hidden_dim();
        let mut hidden = Matrix::zeros(t_max, h);
        let mut prev = vec![0.0_f32; h];
        for t in 0..t_max {
            // z_t = x_t Wx + h_{t-1} Wh + b
            let mut z = self.wx.value.vecmat(inputs.row(t));
            let rec = self.wh.value.vecmat(&prev);
            for ((zi, &ri), &bi) in z.iter_mut().zip(&rec).zip(self.b.value.row(0)) {
                *zi = (*zi + ri + bi).tanh();
            }
            hidden.row_mut(t).copy_from_slice(&z);
            prev = z;
        }
        RnnCache { inputs, hidden }
    }

    /// Allocation-free forward: rebuilds `cache` in place, borrowing all
    /// scratch from `ws`. The input projection for every step is one
    /// batched matmul (whose rows are bitwise identical to the per-step
    /// `vecmat` — see `Matrix::accumulate_rows`), so only the recurrent
    /// product remains per-step. Bitwise identical to [`RnnCell::forward`].
    pub fn forward_into(&self, inputs: &Matrix, cache: &mut RnnCache, ws: &mut Workspace) {
        let t_max = inputs.rows();
        assert!(t_max > 0, "RnnCell::forward: empty sequence");
        assert_eq!(
            inputs.cols(),
            self.input_dim(),
            "RnnCell::forward: input width {} != cell input dim {}",
            inputs.cols(),
            self.input_dim()
        );
        let h = self.hidden_dim();
        cache.inputs.copy_from(inputs);
        cache.hidden.resize_zeroed(t_max, h);
        let mut z_all = ws.take_mat("rnn.z_all", 0, 0);
        inputs.matmul_into(&self.wx.value, &mut z_all);
        let mut rec = ws.take_vec("rnn.rec", h);
        let mut prev = ws.take_vec("rnn.prev", h);
        let b = self.b.value.row(0);
        for t in 0..t_max {
            self.wh.value.vecmat_into(&prev, &mut rec);
            let h_row = cache.hidden.row_mut(t);
            for (((hj, &zj), &rj), &bj) in h_row.iter_mut().zip(z_all.row(t)).zip(&rec).zip(b) {
                *hj = (zj + rj + bj).tanh();
            }
            prev.copy_from_slice(h_row);
        }
        ws.put_vec("rnn.prev", prev);
        ws.put_vec("rnn.rec", rec);
        ws.put_mat("rnn.z_all", z_all);
    }

    /// Allocation-free BPTT: bitwise identical to [`RnnCell::backward`],
    /// with `grad_inputs` written in place. The per-step `dz` rows are
    /// staged in one scratch matrix so the input gradient becomes a single
    /// batched transposed matmul (`dot` is argument-symmetric, so its rows
    /// match the per-step `matvec` exactly).
    pub fn backward_into(
        &self,
        cache: &RnnCache,
        grad_hidden: &Matrix,
        grads: &mut [Matrix],
        grad_inputs: &mut Matrix,
        ws: &mut Workspace,
    ) {
        let t_max = cache.hidden.rows();
        let h = self.hidden_dim();
        assert_eq!(
            grad_hidden.shape(),
            (t_max, h),
            "RnnCell::backward_into: grad shape {:?} != {:?}",
            grad_hidden.shape(),
            (t_max, h)
        );
        let (gwx, gwh, gb) = split_cell_grads(grads, "RnnCell::backward_into");
        let mut dz_all = ws.take_mat("rnn.dz_all", t_max, h);
        let mut carry = ws.take_vec("rnn.carry", h);
        // Transposing the (small) weights once turns every remaining
        // product into a row-streaming `accumulate_rows` sweep.
        let mut wht = ws.take_mat("rnn.wht", 0, 0);
        self.wh.value.transpose_into(&mut wht);
        for t in (0..t_max).rev() {
            let h_t = cache.hidden.row(t);
            let dz_row = dz_all.row_mut(t);
            for (((dzj, &g), &c), &ht) in dz_row
                .iter_mut()
                .zip(grad_hidden.row(t))
                .zip(&carry)
                .zip(h_t)
            {
                *dzj = (g + c) * (1.0 - ht * ht);
            }
            let dz = dz_all.row(t);
            etsb_tensor::add_assign(gb.row_mut(0), dz);
            wht.vecmat_into(dz, &mut carry);
        }
        // Weight gradients batched over the whole sequence: bitwise
        // identical to ascending per-step `add_outer` calls.
        let mut col = ws.take_vec("rnn.col", 0);
        gwx.add_transposed_matmul(&cache.inputs, 0, &dz_all, 0, t_max, &mut col);
        if t_max > 1 {
            gwh.add_transposed_matmul(&cache.hidden, 0, &dz_all, 1, t_max - 1, &mut col);
        }
        let mut wxt = ws.take_mat("rnn.wxt", 0, 0);
        self.wx.value.transpose_into(&mut wxt);
        dz_all.matmul_into(&wxt, grad_inputs);
        ws.put_mat("rnn.wxt", wxt);
        ws.put_mat("rnn.wht", wht);
        ws.put_vec("rnn.col", col);
        ws.put_vec("rnn.carry", carry);
        ws.put_mat("rnn.dz_all", dz_all);
    }

    /// Batched forward over a packed timestep-major batch: the per-step
    /// recurrent product becomes one `active x hidden` windowed matmul
    /// whose rows reduce exactly like the per-sample `vecmat`, so each
    /// sample's hidden sequence is bitwise identical to
    /// [`RnnCell::forward_into`] on that sample alone (under
    /// [`KernelPolicy::Exact`]; `FastMath` is epsilon-close).
    pub fn forward_batch_into(
        &self,
        packed: &Matrix,
        batch: &SeqBatch,
        cache: &mut RnnCache,
        ws: &mut Workspace,
        policy: KernelPolicy,
    ) {
        assert_eq!(
            packed.shape(),
            (batch.total_rows(), self.input_dim()),
            "RnnCell::forward_batch_into: packed shape {:?} != {:?}",
            packed.shape(),
            (batch.total_rows(), self.input_dim())
        );
        let h = self.hidden_dim();
        cache.inputs.copy_from(packed);
        cache.hidden.resize_zeroed(batch.total_rows(), h);
        let mut z_all = ws.take_mat("rnn.bz_all", 0, 0);
        packed.matmul_window_policy_into(0, packed.rows(), &self.wx.value, &mut z_all, policy);
        let mut rec = ws.take_mat("rnn.brec", 0, 0);
        let b = self.b.value.row(0);
        for t in 0..batch.t_max() {
            let n_act = batch.active(t);
            if t == 0 {
                // h_{-1} = 0: the recurrent product is exactly the zero
                // vector the per-sample path gets from `vecmat(0)`.
                rec.resize_zeroed(n_act, h);
            } else {
                cache.hidden.matmul_window_policy_into(
                    batch.offset(t - 1),
                    n_act,
                    &self.wh.value,
                    &mut rec,
                    policy,
                );
            }
            let off = batch.offset(t);
            for s in 0..n_act {
                let h_row = cache.hidden.row_mut(off + s);
                match policy {
                    KernelPolicy::Exact => {
                        for (((hj, &zj), &rj), &bj) in h_row
                            .iter_mut()
                            .zip(z_all.row(off + s))
                            .zip(rec.row(s))
                            .zip(b)
                        {
                            *hj = (zj + rj + bj).tanh();
                        }
                    }
                    KernelPolicy::FastMath => {
                        for (((hj, &zj), &rj), &bj) in h_row
                            .iter_mut()
                            .zip(z_all.row(off + s))
                            .zip(rec.row(s))
                            .zip(b)
                        {
                            *hj = zj + rj + bj;
                        }
                        etsb_tensor::simd::tanh_fast(h_row);
                    }
                }
            }
        }
        ws.put_mat("rnn.brec", rec);
        ws.put_mat("rnn.bz_all", z_all);
    }

    /// Batched BPTT over a packed batch, bitwise identical to per-sample
    /// [`RnnCell::backward_into`] calls in original batch order: the
    /// carry matrix shrinks with the active batch (samples retiring after
    /// step `t` read the same all-zero carry a fresh per-sample backward
    /// starts from), and weight/bias gradients are replayed per sample.
    pub fn backward_batch_into(
        &self,
        batch: &SeqBatch,
        cache: &RnnCache,
        grad_out: &Matrix,
        grads: &mut [Matrix],
        grad_inputs: &mut Matrix,
        ws: &mut Workspace,
    ) {
        let h = self.hidden_dim();
        let total = batch.total_rows();
        assert_eq!(
            grad_out.shape(),
            (total, h),
            "RnnCell::backward_batch_into: grad shape {:?} != {:?}",
            grad_out.shape(),
            (total, h)
        );
        let mut dz_all = ws.take_mat("rnn.bdz_all", total, h);
        let mut carry = ws.take_mat("rnn.bcarry", 0, 0);
        let zero = ws.take_vec("batch.zero", h);
        let mut wht = ws.take_mat("rnn.wht", 0, 0);
        self.wh.value.transpose_into(&mut wht);
        let t_max = batch.t_max();
        for t in (0..t_max).rev() {
            let n_act = batch.active(t);
            let off = batch.offset(t);
            let carried = if t + 1 < t_max {
                batch.active(t + 1)
            } else {
                0
            };
            for s in 0..n_act {
                let c: &[f32] = if s < carried { carry.row(s) } else { &zero };
                let h_t = cache.hidden.row(off + s);
                let dz_row = dz_all.row_mut(off + s);
                for (((dzj, &g), &cj), &ht) in
                    dz_row.iter_mut().zip(grad_out.row(off + s)).zip(c).zip(h_t)
                {
                    *dzj = (g + cj) * (1.0 - ht * ht);
                }
            }
            if t > 0 {
                dz_all.matmul_window_into(off, n_act, &wht, &mut carry);
            }
        }
        accumulate_seq_grads(
            batch,
            &cache.inputs,
            &cache.hidden,
            &dz_all,
            &dz_all,
            grads,
            ws,
        );
        let mut wxt = ws.take_mat("rnn.wxt", 0, 0);
        self.wx.value.transpose_into(&mut wxt);
        dz_all.matmul_window_into(0, dz_all.rows(), &wxt, grad_inputs);
        ws.put_mat("rnn.wxt", wxt);
        ws.put_mat("rnn.wht", wht);
        ws.put_vec("batch.zero", zero);
        ws.put_mat("rnn.bcarry", carry);
        ws.put_mat("rnn.bdz_all", dz_all);
    }

    /// BPTT. `grad_hidden` is `dL/dh_t` for every step (`T x hidden`);
    /// parameter gradients accumulate into `grads` (slots `wx, wh, b`),
    /// and the gradient with respect to the inputs (`T x input_dim`) is
    /// returned.
    pub fn backward(&self, cache: &RnnCache, grad_hidden: &Matrix, grads: &mut [Matrix]) -> Matrix {
        let t_max = cache.hidden.rows();
        let h = self.hidden_dim();
        assert_eq!(
            grad_hidden.shape(),
            (t_max, h),
            "RnnCell::backward: grad shape {:?} != {:?}",
            grad_hidden.shape(),
            (t_max, h)
        );
        let (gwx, gwh, gb) = split_cell_grads(grads, "RnnCell::backward");
        let mut dz_all = Matrix::zeros(t_max, h);
        let mut carry = vec![0.0_f32; h]; // dL/dh_t arriving from step t+1
        let wht = self.wh.value.transpose();
        for t in (0..t_max).rev() {
            let h_t = cache.hidden.row(t);
            // dz_t = (dL/dh_t) * tanh'(z_t), with tanh' = 1 - h_t².
            let dz_row = dz_all.row_mut(t);
            for (((dzj, &g), &c), &ht) in dz_row
                .iter_mut()
                .zip(grad_hidden.row(t))
                .zip(&carry)
                .zip(h_t)
            {
                *dzj = (g + c) * (1.0 - ht * ht);
            }
            let dz = dz_all.row(t);
            etsb_tensor::add_assign(gb.row_mut(0), dz);
            carry = wht.vecmat(dz);
        }
        // Weight gradients batched over the whole sequence: bitwise
        // identical to ascending per-step `add_outer` calls (and therefore
        // to `backward_into`, which uses the same kernels).
        let mut col = Vec::new();
        gwx.add_transposed_matmul(&cache.inputs, 0, &dz_all, 0, t_max, &mut col);
        if t_max > 1 {
            gwh.add_transposed_matmul(&cache.hidden, 0, &dz_all, 1, t_max - 1, &mut col);
        }
        dz_all.matmul(&self.wx.value.transpose())
    }

    /// Parameters in a stable order (for optimizers / checkpoints).
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.wx, &self.wh, &self.b]
    }

    /// Mutable parameters in the same stable order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }
}

impl Recurrence for RnnCell {
    type Cache = RnnCache;

    fn with_dims(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        RnnCell::new(input_dim, hidden, rng)
    }

    fn input_dim(&self) -> usize {
        RnnCell::input_dim(self)
    }

    fn hidden_dim(&self) -> usize {
        RnnCell::hidden_dim(self)
    }

    fn forward_seq(&self, inputs: Matrix) -> (Matrix, RnnCache) {
        let cache = self.forward(inputs);
        (cache.hidden.clone(), cache)
    }

    fn backward_seq(&self, cache: &RnnCache, grad_out: &Matrix, grads: &mut [Matrix]) -> Matrix {
        self.backward(cache, grad_out, grads)
    }

    fn forward_seq_into(&self, inputs: &Matrix, cache: &mut RnnCache, ws: &mut Workspace) {
        self.forward_into(inputs, cache, ws);
    }

    fn seq_output(cache: &RnnCache) -> &Matrix {
        &cache.hidden
    }

    // etsb: allow(shape-assert) -- thin delegation; backward_into asserts every shape.
    fn backward_seq_into(
        &self,
        cache: &RnnCache,
        grad_out: &Matrix,
        grads: &mut [Matrix],
        grad_inputs: &mut Matrix,
        ws: &mut Workspace,
    ) {
        self.backward_into(cache, grad_out, grads, grad_inputs, ws);
    }

    // etsb: allow(shape-assert) -- thin delegation; forward_batch_into asserts every shape.
    fn forward_batch_into(
        &self,
        packed: &Matrix,
        batch: &SeqBatch,
        cache: &mut RnnCache,
        ws: &mut Workspace,
        policy: KernelPolicy,
    ) {
        RnnCell::forward_batch_into(self, packed, batch, cache, ws, policy);
    }

    // etsb: allow(shape-assert) -- thin delegation; backward_batch_into asserts every shape.
    fn backward_batch_into(
        &self,
        batch: &SeqBatch,
        cache: &RnnCache,
        grad_out: &Matrix,
        grads: &mut [Matrix],
        grad_inputs: &mut Matrix,
        ws: &mut Workspace,
    ) {
        RnnCell::backward_batch_into(self, batch, cache, grad_out, grads, grad_inputs, ws);
    }

    fn params(&self) -> Vec<&Param> {
        RnnCell::params(self)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        RnnCell::params_mut(self)
    }
}

/// Reverse the row order of a matrix (time reversal).
fn reverse_rows(m: &Matrix) -> Matrix {
    let (rows, cols) = m.shape();
    let mut out = Matrix::zeros(rows, cols);
    reverse_rows_into(m, &mut out);
    out
}

/// Time reversal into a preallocated matrix (reshaped in place).
// etsb: allow(shape-assert) -- `out` is a reshaped sink; there is no shape precondition.
fn reverse_rows_into(m: &Matrix, out: &mut Matrix) {
    let rows = m.rows();
    out.resize_zeroed(rows, m.cols());
    for r in 0..rows {
        out.row_mut(rows - 1 - r).copy_from_slice(m.row(r));
    }
}

/// A bidirectional recurrent layer: one forward cell, one backward cell,
/// output per step is `[h_fwd_t ‖ h_bwd_t]` (width `2 * hidden`), matching
/// Keras' `Bidirectional(..., merge_mode="concat")`. Generic over the
/// cell; the default is the paper's vanilla [`RnnCell`].
#[derive(Clone, Debug)]
pub struct BiRnn<C: Recurrence = RnnCell> {
    /// Cell consuming the sequence left-to-right.
    pub fwd: C,
    /// Cell consuming the sequence right-to-left.
    pub bwd: C,
}

/// Cache from [`BiRnn::forward`].
#[derive(Clone, Debug)]
pub struct BiRnnCache<C: Recurrence = RnnCell> {
    fwd: C::Cache,
    /// Backward-cell cache; its rows are in *reversed* time order.
    bwd: C::Cache,
    seq_len: usize,
}

// Manual impl: a derive would demand `C: Default`, which the cells don't
// (and shouldn't) provide — only their caches do.
impl<C: Recurrence> Default for BiRnnCache<C> {
    fn default() -> Self {
        Self {
            fwd: C::Cache::default(),
            bwd: C::Cache::default(),
            seq_len: 0,
        }
    }
}

impl<C: Recurrence> BiRnn<C> {
    /// New bidirectional layer with independently initialized cells.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        Self {
            fwd: C::with_dims(input_dim, hidden, rng),
            bwd: C::with_dims(input_dim, hidden, rng),
        }
    }

    /// Per-direction hidden width (output width is twice this).
    pub fn hidden_dim(&self) -> usize {
        self.fwd.hidden_dim()
    }

    /// Output width (`2 * hidden`).
    pub fn output_dim(&self) -> usize {
        2 * self.hidden_dim()
    }

    /// Run both directions; returns the `T x 2·hidden` output sequence.
    pub fn forward(&self, inputs: Matrix) -> (Matrix, BiRnnCache<C>) {
        let seq_len = inputs.rows();
        let reversed = reverse_rows(&inputs);
        let (out_fwd, fwd) = self.fwd.forward_seq(inputs);
        let (out_bwd, bwd) = self.bwd.forward_seq(reversed);
        let h = self.hidden_dim();
        let mut out = Matrix::zeros(seq_len, 2 * h);
        for t in 0..seq_len {
            out.row_mut(t)[..h].copy_from_slice(out_fwd.row(t));
            // Backward cell's state for original position t was computed at
            // reversed step T-1-t.
            out.row_mut(t)[h..].copy_from_slice(out_bwd.row(seq_len - 1 - t));
        }
        out.assert_finite("birnn", "forward(recurrent-activation)");
        (out, BiRnnCache { fwd, bwd, seq_len })
    }

    /// Allocation-free forward: both directions run through the cells'
    /// `forward_seq_into`, the concatenated output lands in `out`
    /// (reshaped in place). Bitwise identical to [`BiRnn::forward`].
    pub fn forward_into(
        &self,
        inputs: &Matrix,
        out: &mut Matrix,
        cache: &mut BiRnnCache<C>,
        ws: &mut Workspace,
    ) {
        let seq_len = inputs.rows();
        assert_eq!(
            inputs.cols(),
            self.fwd.input_dim(),
            "BiRnn::forward_into: input width {} != {}",
            inputs.cols(),
            self.fwd.input_dim()
        );
        let mut reversed = ws.take_mat("birnn.reversed", 0, 0);
        reverse_rows_into(inputs, &mut reversed);
        self.fwd.forward_seq_into(inputs, &mut cache.fwd, ws);
        self.bwd.forward_seq_into(&reversed, &mut cache.bwd, ws);
        cache.seq_len = seq_len;
        let h = self.hidden_dim();
        out.resize_zeroed(seq_len, 2 * h);
        let out_fwd = C::seq_output(&cache.fwd);
        let out_bwd = C::seq_output(&cache.bwd);
        for t in 0..seq_len {
            out.row_mut(t)[..h].copy_from_slice(out_fwd.row(t));
            out.row_mut(t)[h..].copy_from_slice(out_bwd.row(seq_len - 1 - t));
        }
        out.assert_finite("birnn", "forward(recurrent-activation)");
        ws.put_mat("birnn.reversed", reversed);
    }

    /// Backward through both directions; `grad_out` is `T x 2·hidden` in
    /// output layout, `grads` holds one slot per parameter in [`BiRnn::params`]
    /// order (fwd cell then bwd cell). Returns `T x input_dim` input
    /// gradients.
    pub fn backward(
        &self,
        cache: &BiRnnCache<C>,
        grad_out: &Matrix,
        grads: &mut [Matrix],
    ) -> Matrix {
        let t_max = cache.seq_len;
        let h = self.hidden_dim();
        assert_eq!(
            grad_out.shape(),
            (t_max, 2 * h),
            "BiRnn::backward: grad shape {:?} != {:?}",
            grad_out.shape(),
            (t_max, 2 * h)
        );
        let n_fwd = self.fwd.n_params();
        assert_eq!(
            grads.len(),
            n_fwd + self.bwd.n_params(),
            "BiRnn::backward: gradient slot count"
        );
        let (grads_fwd, grads_bwd) = grads.split_at_mut(n_fwd);
        let mut grad_fwd = Matrix::zeros(t_max, h);
        let mut grad_bwd = Matrix::zeros(t_max, h);
        for t in 0..t_max {
            grad_fwd.row_mut(t).copy_from_slice(&grad_out.row(t)[..h]);
            grad_bwd
                .row_mut(t_max - 1 - t)
                .copy_from_slice(&grad_out.row(t)[h..]);
        }
        let gi_fwd = self.fwd.backward_seq(&cache.fwd, &grad_fwd, grads_fwd);
        let gi_bwd_rev = self.bwd.backward_seq(&cache.bwd, &grad_bwd, grads_bwd);
        let mut grad_inputs = gi_fwd;
        let gi_bwd = reverse_rows(&gi_bwd_rev);
        grad_inputs.add_assign(&gi_bwd);
        grad_inputs.assert_finite("birnn", "backward(grad-in)");
        grad_inputs
    }

    /// Allocation-free backward: bitwise identical to [`BiRnn::backward`],
    /// with the input gradient written into `grad_inputs`.
    pub fn backward_into(
        &self,
        cache: &BiRnnCache<C>,
        grad_out: &Matrix,
        grads: &mut [Matrix],
        grad_inputs: &mut Matrix,
        ws: &mut Workspace,
    ) {
        let t_max = cache.seq_len;
        let h = self.hidden_dim();
        assert_eq!(
            grad_out.shape(),
            (t_max, 2 * h),
            "BiRnn::backward_into: grad shape {:?} != {:?}",
            grad_out.shape(),
            (t_max, 2 * h)
        );
        let n_fwd = self.fwd.n_params();
        assert_eq!(
            grads.len(),
            n_fwd + self.bwd.n_params(),
            "BiRnn::backward_into: gradient slot count"
        );
        let (grads_fwd, grads_bwd) = grads.split_at_mut(n_fwd);
        let mut grad_fwd = ws.take_mat("birnn.grad_fwd", t_max, h);
        let mut grad_bwd = ws.take_mat("birnn.grad_bwd", t_max, h);
        for t in 0..t_max {
            grad_fwd.row_mut(t).copy_from_slice(&grad_out.row(t)[..h]);
            grad_bwd
                .row_mut(t_max - 1 - t)
                .copy_from_slice(&grad_out.row(t)[h..]);
        }
        self.fwd
            .backward_seq_into(&cache.fwd, &grad_fwd, grads_fwd, grad_inputs, ws);
        let mut gi_bwd_rev = ws.take_mat("birnn.gi_bwd", 0, 0);
        self.bwd
            .backward_seq_into(&cache.bwd, &grad_bwd, grads_bwd, &mut gi_bwd_rev, ws);
        // grad_inputs[t] += gi_bwd_rev[T-1-t]: same element order as the
        // allocating path's reverse-then-add.
        for r in 0..t_max {
            etsb_tensor::add_assign(grad_inputs.row_mut(t_max - 1 - r), gi_bwd_rev.row(r));
        }
        grad_inputs.assert_finite("birnn", "backward(grad-in)");
        ws.put_mat("birnn.gi_bwd", gi_bwd_rev);
        ws.put_mat("birnn.grad_bwd", grad_bwd);
        ws.put_mat("birnn.grad_fwd", grad_fwd);
    }

    /// Batched forward over a packed timestep-major batch: both cells run
    /// their batched recurrence (the backward cell on the per-sample
    /// time-reversed packing), and `out` receives the concatenated
    /// `[h_fwd ‖ h_bwd]` rows in packed layout. Bitwise identical to
    /// per-sample [`BiRnn::forward_into`] calls under
    /// [`KernelPolicy::Exact`]; epsilon-close under `FastMath`.
    pub fn forward_batch_into(
        &self,
        packed: &Matrix,
        batch: &SeqBatch,
        out: &mut Matrix,
        cache: &mut BiRnnCache<C>,
        ws: &mut Workspace,
        policy: KernelPolicy,
    ) {
        assert_eq!(
            packed.shape(),
            (batch.total_rows(), self.fwd.input_dim()),
            "BiRnn::forward_batch_into: packed shape {:?} != {:?}",
            packed.shape(),
            (batch.total_rows(), self.fwd.input_dim())
        );
        let mut reversed = ws.take_mat("birnn.brev", 0, 0);
        batch.reverse_packed_into(packed, &mut reversed);
        self.fwd
            .forward_batch_into(packed, batch, &mut cache.fwd, ws, policy);
        self.bwd
            .forward_batch_into(&reversed, batch, &mut cache.bwd, ws, policy);
        cache.seq_len = batch.t_max();
        let h = self.hidden_dim();
        out.resize_zeroed(batch.total_rows(), 2 * h);
        let out_fwd = C::seq_output(&cache.fwd);
        let out_bwd = C::seq_output(&cache.bwd);
        for s in 0..batch.n_samples() {
            let len = batch.len_at(s);
            for t in 0..len {
                let row = out.row_mut(batch.row(s, t));
                row[..h].copy_from_slice(out_fwd.row(batch.row(s, t)));
                // The backward cell's state for a sample's position t was
                // computed at its reversed step len-1-t.
                row[h..].copy_from_slice(out_bwd.row(batch.row(s, len - 1 - t)));
            }
        }
        out.assert_finite("birnn", "forward(recurrent-activation)");
        ws.put_mat("birnn.brev", reversed);
    }

    /// Batched backward through both directions on the packed layout.
    /// Bitwise identical to per-sample [`BiRnn::backward_into`] calls in
    /// original batch order (the two cells fill disjoint gradient slots,
    /// so per-slot accumulation order is preserved).
    pub fn backward_batch_into(
        &self,
        batch: &SeqBatch,
        cache: &BiRnnCache<C>,
        grad_out: &Matrix,
        grads: &mut [Matrix],
        grad_inputs: &mut Matrix,
        ws: &mut Workspace,
    ) {
        let h = self.hidden_dim();
        let total = batch.total_rows();
        assert_eq!(
            grad_out.shape(),
            (total, 2 * h),
            "BiRnn::backward_batch_into: grad shape {:?} != {:?}",
            grad_out.shape(),
            (total, 2 * h)
        );
        let n_fwd = self.fwd.n_params();
        assert_eq!(
            grads.len(),
            n_fwd + self.bwd.n_params(),
            "BiRnn::backward_batch_into: gradient slot count"
        );
        let (grads_fwd, grads_bwd) = grads.split_at_mut(n_fwd);
        let mut grad_fwd = ws.take_mat("birnn.bgrad_fwd", total, h);
        let mut grad_bwd = ws.take_mat("birnn.bgrad_bwd", total, h);
        for s in 0..batch.n_samples() {
            let len = batch.len_at(s);
            for t in 0..len {
                let g = grad_out.row(batch.row(s, t));
                grad_fwd.row_mut(batch.row(s, t)).copy_from_slice(&g[..h]);
                grad_bwd
                    .row_mut(batch.row(s, len - 1 - t))
                    .copy_from_slice(&g[h..]);
            }
        }
        self.fwd
            .backward_batch_into(batch, &cache.fwd, &grad_fwd, grads_fwd, grad_inputs, ws);
        let mut gi_bwd_rev = ws.take_mat("birnn.bgi_bwd", 0, 0);
        self.bwd
            .backward_batch_into(batch, &cache.bwd, &grad_bwd, grads_bwd, &mut gi_bwd_rev, ws);
        // Per sample: grad_inputs[t] += gi_bwd_rev[len-1-t], the same
        // element order as the per-sample reverse-then-add.
        for s in 0..batch.n_samples() {
            let len = batch.len_at(s);
            for r in 0..len {
                etsb_tensor::add_assign(
                    grad_inputs.row_mut(batch.row(s, len - 1 - r)),
                    gi_bwd_rev.row(batch.row(s, r)),
                );
            }
        }
        grad_inputs.assert_finite("birnn", "backward(grad-in)");
        ws.put_mat("birnn.bgi_bwd", gi_bwd_rev);
        ws.put_mat("birnn.bgrad_bwd", grad_bwd);
        ws.put_mat("birnn.bgrad_fwd", grad_fwd);
    }

    /// Parameter-slot count of both cells without allocating the vector
    /// (hot-path gradient splits must stay allocation-free).
    pub fn n_params(&self) -> usize {
        self.fwd.n_params() + self.bwd.n_params()
    }

    /// Parameters of both cells (stable order: fwd then bwd).
    pub fn params(&self) -> Vec<&Param> {
        let mut p = self.fwd.params();
        p.extend(self.bwd.params());
        p
    }

    /// Mutable parameters in the same order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let (f, b) = (&mut self.fwd, &mut self.bwd);
        let mut p = f.params_mut();
        p.extend(b.params_mut());
        p
    }
}

/// The paper's *two-stacked* bidirectional RNN (§4.3): two [`BiRnn`] layers
/// in series, the second consuming the first's full output sequence; the
/// layer output is the concatenation of the second layer's two final
/// states (`[fwd_{T-1} ‖ bwd after consuming x_0]`), i.e. Keras'
/// `Bidirectional(SimpleRNN(h, return_sequences=True))` followed by
/// `Bidirectional(SimpleRNN(h))`. Generic over the recurrent cell.
#[derive(Clone, Debug)]
pub struct StackedBiRnn<C: Recurrence = RnnCell> {
    /// First bidirectional layer (`input_dim -> 2h`).
    pub layer1: BiRnn<C>,
    /// Second bidirectional layer (`2h -> 2h`).
    pub layer2: BiRnn<C>,
}

/// Cache from [`StackedBiRnn::forward`].
#[derive(Clone, Debug)]
pub struct StackedBiRnnCache<C: Recurrence = RnnCell> {
    l1: BiRnnCache<C>,
    l2: BiRnnCache<C>,
    seq_len: usize,
}

impl<C: Recurrence> Default for StackedBiRnnCache<C> {
    fn default() -> Self {
        Self {
            l1: BiRnnCache::default(),
            l2: BiRnnCache::default(),
            seq_len: 0,
        }
    }
}

impl<C: Recurrence> StackedBiRnn<C> {
    /// New two-stacked bidirectional RNN with `hidden` units per direction.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        Self {
            layer1: BiRnn::new(input_dim, hidden, rng),
            layer2: BiRnn::new(2 * hidden, hidden, rng),
        }
    }

    /// Width of the final feature vector (`2 * hidden`).
    pub fn output_dim(&self) -> usize {
        self.layer2.output_dim()
    }

    /// Encode a sequence into a `2·hidden` feature vector.
    pub fn forward(&self, inputs: Matrix) -> (Vec<f32>, StackedBiRnnCache<C>) {
        let seq_len = inputs.rows();
        let (seq1, l1) = self.layer1.forward(inputs);
        let (seq2, l2) = self.layer2.forward(seq1);
        let h = self.layer2.hidden_dim();
        let t_last = seq_len - 1;
        let mut out = vec![0.0_f32; 2 * h];
        // Final forward state lives in the last output row's first half;
        // the backward cell's final state (after consuming x_0) lives in
        // the *first* output row's second half.
        out[..h].copy_from_slice(&seq2.row(t_last)[..h]);
        out[h..].copy_from_slice(&seq2.row(0)[h..]);
        (out, StackedBiRnnCache { l1, l2, seq_len })
    }

    /// Allocation-free encode: the `2·hidden` feature vector is written
    /// into `out` (typically a row of a shared feature matrix). Bitwise
    /// identical to [`StackedBiRnn::forward`].
    pub fn forward_into(
        &self,
        inputs: &Matrix,
        out: &mut [f32],
        cache: &mut StackedBiRnnCache<C>,
        ws: &mut Workspace,
    ) {
        let seq_len = inputs.rows();
        let h = self.layer2.hidden_dim();
        assert_eq!(out.len(), 2 * h, "StackedBiRnn::forward_into: out width");
        let mut seq1 = ws.take_mat("stacked.seq1", 0, 0);
        self.layer1
            .forward_into(inputs, &mut seq1, &mut cache.l1, ws);
        let mut seq2 = ws.take_mat("stacked.seq2", 0, 0);
        self.layer2
            .forward_into(&seq1, &mut seq2, &mut cache.l2, ws);
        cache.seq_len = seq_len;
        out[..h].copy_from_slice(&seq2.row(seq_len - 1)[..h]);
        out[h..].copy_from_slice(&seq2.row(0)[h..]);
        ws.put_mat("stacked.seq2", seq2);
        ws.put_mat("stacked.seq1", seq1);
    }

    /// Backward from a gradient on the final feature vector; `grads` holds
    /// one slot per parameter in [`StackedBiRnn::params`] order (layer1
    /// then layer2). Returns the gradient with respect to the input
    /// sequence.
    pub fn backward(
        &self,
        cache: &StackedBiRnnCache<C>,
        grad_out: &[f32],
        grads: &mut [Matrix],
    ) -> Matrix {
        let h = self.layer2.hidden_dim();
        assert_eq!(grad_out.len(), 2 * h, "StackedBiRnn::backward: grad width");
        let n_l1 = self.layer1.n_params();
        assert_eq!(
            grads.len(),
            n_l1 + self.layer2.n_params(),
            "StackedBiRnn::backward: gradient slot count"
        );
        let (grads_l1, grads_l2) = grads.split_at_mut(n_l1);
        let t_max = cache.seq_len;
        let mut grad_seq2 = Matrix::zeros(t_max, 2 * h);
        grad_seq2.row_mut(t_max - 1)[..h].copy_from_slice(&grad_out[..h]);
        grad_seq2.row_mut(0)[h..].copy_from_slice(&grad_out[h..]);
        let grad_seq1 = self.layer2.backward(&cache.l2, &grad_seq2, grads_l2);
        self.layer1.backward(&cache.l1, &grad_seq1, grads_l1)
    }

    /// Allocation-free backward: bitwise identical to
    /// [`StackedBiRnn::backward`], input gradients written into
    /// `grad_inputs`.
    pub fn backward_into(
        &self,
        cache: &StackedBiRnnCache<C>,
        grad_out: &[f32],
        grads: &mut [Matrix],
        grad_inputs: &mut Matrix,
        ws: &mut Workspace,
    ) {
        let h = self.layer2.hidden_dim();
        assert_eq!(
            grad_out.len(),
            2 * h,
            "StackedBiRnn::backward_into: grad width"
        );
        let n_l1 = self.layer1.n_params();
        assert_eq!(
            grads.len(),
            n_l1 + self.layer2.n_params(),
            "StackedBiRnn::backward_into: gradient slot count"
        );
        let (grads_l1, grads_l2) = grads.split_at_mut(n_l1);
        let t_max = cache.seq_len;
        let mut grad_seq2 = ws.take_mat("stacked.grad_seq2", t_max, 2 * h);
        grad_seq2.row_mut(t_max - 1)[..h].copy_from_slice(&grad_out[..h]);
        grad_seq2.row_mut(0)[h..].copy_from_slice(&grad_out[h..]);
        let mut grad_seq1 = ws.take_mat("stacked.grad_seq1", 0, 0);
        self.layer2
            .backward_into(&cache.l2, &grad_seq2, grads_l2, &mut grad_seq1, ws);
        self.layer1
            .backward_into(&cache.l1, &grad_seq1, grads_l1, grad_inputs, ws);
        ws.put_mat("stacked.grad_seq1", grad_seq1);
        ws.put_mat("stacked.grad_seq2", grad_seq2);
    }

    /// Batched encode of a packed batch: both layers run batched, then
    /// each sample's `2·hidden` feature vector lands in `features` row
    /// `orig` (original batch order — the restore-order index map).
    /// Bitwise identical to per-sample [`StackedBiRnn::forward_into`]
    /// under [`KernelPolicy::Exact`]; epsilon-close under `FastMath`.
    // etsb: allow(shape-assert, into-shape-assert) -- thin delegation; layer1's batched forward asserts `packed`, and `features` is a resized sink.
    pub fn forward_batch_into(
        &self,
        packed: &Matrix,
        batch: &SeqBatch,
        features: &mut Matrix,
        cache: &mut StackedBiRnnCache<C>,
        ws: &mut Workspace,
        policy: KernelPolicy,
    ) {
        let h = self.layer2.hidden_dim();
        let mut seq1 = ws.take_mat("stacked.bseq1", 0, 0);
        self.layer1
            .forward_batch_into(packed, batch, &mut seq1, &mut cache.l1, ws, policy);
        let mut seq2 = ws.take_mat("stacked.bseq2", 0, 0);
        self.layer2
            .forward_batch_into(&seq1, batch, &mut seq2, &mut cache.l2, ws, policy);
        cache.seq_len = batch.t_max();
        features.resize_zeroed(batch.n_samples(), 2 * h);
        for orig in 0..batch.n_samples() {
            let slot = batch.slot_of(orig);
            let len = batch.len_at(slot);
            let out = features.row_mut(orig);
            out[..h].copy_from_slice(&seq2.row(batch.row(slot, len - 1))[..h]);
            out[h..].copy_from_slice(&seq2.row(batch.row(slot, 0))[h..]);
        }
        ws.put_mat("stacked.bseq2", seq2);
        ws.put_mat("stacked.bseq1", seq1);
    }

    /// Batched backward from per-sample feature gradients (`grad_features`
    /// row `orig` is sample `orig`'s gradient); input gradients come back
    /// in packed layout. Bitwise identical to per-sample
    /// [`StackedBiRnn::backward_into`] calls in original batch order.
    pub fn backward_batch_into(
        &self,
        batch: &SeqBatch,
        cache: &StackedBiRnnCache<C>,
        grad_features: &Matrix,
        grads: &mut [Matrix],
        grad_inputs: &mut Matrix,
        ws: &mut Workspace,
    ) {
        let h = self.layer2.hidden_dim();
        assert_eq!(
            grad_features.shape(),
            (batch.n_samples(), 2 * h),
            "StackedBiRnn::backward_batch_into: grad shape {:?} != {:?}",
            grad_features.shape(),
            (batch.n_samples(), 2 * h)
        );
        let n_l1 = self.layer1.n_params();
        assert_eq!(
            grads.len(),
            n_l1 + self.layer2.n_params(),
            "StackedBiRnn::backward_batch_into: gradient slot count"
        );
        let (grads_l1, grads_l2) = grads.split_at_mut(n_l1);
        let mut grad_seq2 = ws.take_mat("stacked.bgrad_seq2", batch.total_rows(), 2 * h);
        for orig in 0..batch.n_samples() {
            let slot = batch.slot_of(orig);
            let len = batch.len_at(slot);
            let g = grad_features.row(orig);
            grad_seq2.row_mut(batch.row(slot, len - 1))[..h].copy_from_slice(&g[..h]);
            grad_seq2.row_mut(batch.row(slot, 0))[h..].copy_from_slice(&g[h..]);
        }
        let mut grad_seq1 = ws.take_mat("stacked.bgrad_seq1", 0, 0);
        self.layer2
            .backward_batch_into(batch, &cache.l2, &grad_seq2, grads_l2, &mut grad_seq1, ws);
        self.layer1
            .backward_batch_into(batch, &cache.l1, &grad_seq1, grads_l1, grad_inputs, ws);
        ws.put_mat("stacked.bgrad_seq1", grad_seq1);
        ws.put_mat("stacked.bgrad_seq2", grad_seq2);
    }

    /// All parameters (layer1 then layer2, each fwd then bwd).
    pub fn params(&self) -> Vec<&Param> {
        let mut p = self.layer1.params();
        p.extend(self.layer2.params());
        p
    }

    /// Mutable parameters in the same order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let (l1, l2) = (&mut self.layer1, &mut self.layer2);
        let mut p = l1.params_mut();
        p.extend(l2.params_mut());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_tensor::init::seeded_rng;

    #[test]
    fn rnn_forward_shapes_and_state_propagation() {
        let mut rng = seeded_rng(1);
        let cell = RnnCell::new(3, 4, &mut rng);
        let inputs = Matrix::from_fn(5, 3, |i, j| (i as f32 - j as f32) * 0.1);
        let cache = cell.forward(inputs.clone());
        assert_eq!(cache.hidden.shape(), (5, 4));
        // Same input at t=0 and t=1 but different hidden states because of
        // the recurrence (h_0 feeds into h_1).
        let constant = Matrix::from_fn(2, 3, |_, _| 0.3);
        let c2 = cell.forward(constant);
        assert_ne!(c2.hidden.row(0), c2.hidden.row(1));
    }

    #[test]
    fn rnn_outputs_bounded_by_tanh() {
        let mut rng = seeded_rng(2);
        let cell = RnnCell::new(2, 8, &mut rng);
        let inputs = Matrix::from_fn(20, 2, |i, _| i as f32);
        let cache = cell.forward(inputs);
        assert!(cache.hidden.as_slice().iter().all(|&x| x.abs() <= 1.0));
    }

    #[test]
    fn single_step_sequence_works() {
        let mut rng = seeded_rng(3);
        let s: StackedBiRnn = StackedBiRnn::new(4, 3, &mut rng);
        let (out, _) = s.forward(Matrix::from_fn(1, 4, |_, j| j as f32 * 0.1));
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn birnn_is_symmetric_under_reversal_with_swapped_cells() {
        // Running BiRnn on a reversed sequence with fwd/bwd cells swapped
        // must produce the row-reversed, half-swapped output.
        let mut rng = seeded_rng(4);
        let b: BiRnn = BiRnn::new(3, 2, &mut rng);
        let swapped = BiRnn {
            fwd: b.bwd.clone(),
            bwd: b.fwd.clone(),
        };
        let x = Matrix::from_fn(6, 3, |i, j| ((i * 3 + j) as f32).sin());
        let (out, _) = b.forward(x.clone());
        let (out_rev, _) = swapped.forward(reverse_rows(&x));
        let h = 2;
        for t in 0..6 {
            let orig = out.row(t);
            let mirrored = out_rev.row(5 - t);
            assert!(etsb_tensor::max_abs_diff(&orig[..h], &mirrored[h..]) < 1e-6);
            assert!(etsb_tensor::max_abs_diff(&orig[h..], &mirrored[..h]) < 1e-6);
        }
    }

    #[test]
    fn stacked_output_dim() {
        let mut rng = seeded_rng(5);
        let s: StackedBiRnn = StackedBiRnn::new(10, 64, &mut rng);
        assert_eq!(s.output_dim(), 128);
        assert_eq!(s.params().len(), 12);
    }

    /// Full BPTT gradient check on a tiny cell: perturb every weight and
    /// compare the analytic gradient of a scalar loss (sum of all hidden
    /// states) against central differences.
    #[test]
    fn rnn_cell_gradient_check() {
        let mut rng = seeded_rng(6);
        let cell = RnnCell::new(2, 3, &mut rng);
        let inputs = Matrix::from_fn(4, 2, |i, j| ((i + j) as f32 * 0.7).sin() * 0.5);

        let loss = |c: &RnnCell| c.forward(inputs.clone()).hidden.sum();

        let cache = cell.forward(inputs.clone());
        let ones = Matrix::full(4, 3, 1.0);
        let mut grads = crate::param::grad_buffer_for(&cell.params());
        let grad_inputs = cell.backward(&cache, &ones, grads.slots_mut());

        let h = 1e-3_f32;
        // Check a selection of weights in each parameter.
        for (pi, coords) in [(0, (1, 2)), (1, (0, 1)), (2, (0, 2))] {
            let analytic = grads.slot(pi)[coords];
            let mut plus = cell.clone();
            plus.params_mut()[pi].value[coords] += h;
            let mut minus = cell.clone();
            minus.params_mut()[pi].value[coords] -= h;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * h);
            assert!(
                (numeric - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
                "param {pi} {coords:?}: numeric {numeric} vs analytic {analytic}"
            );
        }
        // And the input gradient.
        let analytic = grad_inputs[(1, 0)];
        let mut xp = inputs.clone();
        xp[(1, 0)] += h;
        let mut xm = inputs.clone();
        xm[(1, 0)] -= h;
        let numeric = (cell.forward(xp).hidden.sum() - cell.forward(xm).hidden.sum()) / (2.0 * h);
        assert!(
            (numeric - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
            "input grad: numeric {numeric} vs analytic {analytic}"
        );
    }

    /// Gradient check through the full two-stacked bidirectional network.
    #[test]
    fn stacked_birnn_gradient_check() {
        let mut rng = seeded_rng(7);
        let net = StackedBiRnn::new(2, 2, &mut rng);
        let inputs = Matrix::from_fn(3, 2, |i, j| ((i * 2 + j) as f32 * 0.9).cos() * 0.4);

        let loss = |n: &StackedBiRnn| n.forward(inputs.clone()).0.iter().sum::<f32>();

        let (out, cache) = net.forward(inputs.clone());
        let mut grads = crate::param::grad_buffer_for(&net.params());
        let grad_inputs = net.backward(&cache, &vec![1.0; out.len()], grads.slots_mut());

        let h = 1e-3_f32;
        // One weight from every cell of both layers.
        for pi in 0..12 {
            let analytic = grads.slot(pi)[(0, 0)];
            let mut plus = net.clone();
            plus.params_mut()[pi].value[(0, 0)] += h;
            let mut minus = net.clone();
            minus.params_mut()[pi].value[(0, 0)] -= h;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * h);
            assert!(
                (numeric - analytic).abs() < 3e-2 * analytic.abs().max(1.0),
                "param {pi}: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Input gradient.
        let analytic = grad_inputs[(2, 1)];
        let mut xp = inputs.clone();
        xp[(2, 1)] += h;
        let mut xm = inputs.clone();
        xm[(2, 1)] -= h;
        let loss_of = |x: Matrix| net.forward(x).0.iter().sum::<f32>();
        let numeric = (loss_of(xp) - loss_of(xm)) / (2.0 * h);
        assert!(
            (numeric - analytic).abs() < 3e-2 * analytic.abs().max(1.0),
            "input grad: numeric {numeric} vs analytic {analytic}"
        );
    }

    /// The tentpole contract of the workspace rewrite: for every cell
    /// kind, the `_into` forward/backward produce bit-identical outputs,
    /// parameter gradients and input gradients — including when the same
    /// workspace and cache are reused across samples of different lengths.
    #[test]
    fn into_paths_are_bitwise_identical_to_allocating_paths() {
        fn check<C: Recurrence>(seed: u64) {
            let mut rng = seeded_rng(seed);
            let net: StackedBiRnn<C> = StackedBiRnn::new(5, 4, &mut rng);
            let mut ws = Workspace::new();
            let mut cache_into = StackedBiRnnCache::<C>::default();
            let mut out_into = vec![0.0_f32; net.output_dim()];
            let mut gi_into = Matrix::default();
            // Varying lengths back-to-back: later runs reuse every buffer.
            for (len, variant) in [(7usize, 0usize), (3, 1), (9, 2)] {
                let x = Matrix::from_fn(len, 5, |i, j| {
                    ((i * 5 + j + variant) as f32 * 0.37).sin() * 0.8
                });
                let (out_ref, cache_ref) = net.forward(x.clone());
                net.forward_into(&x, &mut out_into, &mut cache_into, &mut ws);
                assert_eq!(out_ref, out_into, "forward outputs diverge (len {len})");

                let gseed: Vec<f32> = (0..net.output_dim())
                    .map(|i| ((i + variant) as f32 * 0.71).cos())
                    .collect();
                let mut grads_ref = crate::param::grad_buffer_for(&net.params());
                let gi_ref = net.backward(&cache_ref, &gseed, grads_ref.slots_mut());
                let mut grads_into = crate::param::grad_buffer_for(&net.params());
                net.backward_into(
                    &cache_into,
                    &gseed,
                    grads_into.slots_mut(),
                    &mut gi_into,
                    &mut ws,
                );
                assert_eq!(gi_ref, gi_into, "input grads diverge (len {len})");
                for s in 0..grads_ref.len() {
                    assert_eq!(
                        grads_ref.slot(s),
                        grads_into.slot(s),
                        "grad slot {s} diverges (len {len})"
                    );
                }
            }
        }
        check::<RnnCell>(21);
        check::<crate::GruCell>(22);
        check::<crate::LstmCell>(23);
    }

    /// The batched tentpole contract: packing mixed-length samples into a
    /// timestep-major batch and running the batched kernels yields
    /// bit-identical features, parameter gradients and input gradients to
    /// the per-sample workspace path (itself pinned bitwise to the
    /// allocating reference above) — for every cell kind.
    #[test]
    fn batched_paths_are_bitwise_identical_to_per_sample_paths() {
        fn check<C: Recurrence>(seed: u64) {
            let mut rng = seeded_rng(seed);
            let net: StackedBiRnn<C> = StackedBiRnn::new(5, 4, &mut rng);
            // Mixed lengths with duplicates and a length-1 sample, in
            // scrambled order so the sort + restore map is exercised.
            let lens = [7usize, 3, 9, 1, 4, 9];
            let inputs: Vec<Matrix> = lens
                .iter()
                .enumerate()
                .map(|(v, &len)| {
                    Matrix::from_fn(len, 5, |i, j| ((i * 5 + j + v) as f32 * 0.37).sin() * 0.8)
                })
                .collect();
            let gseeds: Vec<Vec<f32>> = (0..lens.len())
                .map(|v| {
                    (0..net.output_dim())
                        .map(|i| ((i + v) as f32 * 0.71).cos())
                        .collect()
                })
                .collect();

            // Per-sample workspace reference: samples in original order,
            // gradients accumulating into one shared buffer — exactly
            // what one shard of the pre-batching training path did.
            let mut ws = Workspace::new();
            let mut grads_ref = crate::param::grad_buffer_for(&net.params());
            let mut feats_ref: Vec<Vec<f32>> = Vec::new();
            let mut gi_ref: Vec<Matrix> = Vec::new();
            let mut cache = StackedBiRnnCache::<C>::default();
            let mut out = vec![0.0_f32; net.output_dim()];
            for (x, g) in inputs.iter().zip(&gseeds) {
                net.forward_into(x, &mut out, &mut cache, &mut ws);
                feats_ref.push(out.clone());
                let mut gi = Matrix::default();
                net.backward_into(&cache, g, grads_ref.slots_mut(), &mut gi, &mut ws);
                gi_ref.push(gi);
            }

            // Batched path: pack, run once, compare against every sample.
            let batch = SeqBatch::from_lengths(&lens);
            let mut packed = Matrix::zeros(batch.total_rows(), 5);
            for (orig, x) in inputs.iter().enumerate() {
                let slot = batch.slot_of(orig);
                for t in 0..x.rows() {
                    packed.row_mut(batch.row(slot, t)).copy_from_slice(x.row(t));
                }
            }
            let mut bcache = StackedBiRnnCache::<C>::default();
            let mut feats = Matrix::default();
            let mut bws = Workspace::new();
            net.forward_batch_into(
                &packed,
                &batch,
                &mut feats,
                &mut bcache,
                &mut bws,
                KernelPolicy::Exact,
            );
            for (orig, f) in feats_ref.iter().enumerate() {
                assert_eq!(
                    feats.row(orig),
                    f.as_slice(),
                    "features diverge (sample {orig})"
                );
            }
            let mut grad_feats = Matrix::zeros(lens.len(), net.output_dim());
            for (orig, g) in gseeds.iter().enumerate() {
                grad_feats.row_mut(orig).copy_from_slice(g);
            }
            let mut grads_b = crate::param::grad_buffer_for(&net.params());
            let mut gi_packed = Matrix::default();
            net.backward_batch_into(
                &batch,
                &bcache,
                &grad_feats,
                grads_b.slots_mut(),
                &mut gi_packed,
                &mut bws,
            );
            for s in 0..grads_ref.len() {
                assert_eq!(grads_ref.slot(s), grads_b.slot(s), "grad slot {s} diverges");
            }
            for (orig, gi) in gi_ref.iter().enumerate() {
                let slot = batch.slot_of(orig);
                for t in 0..gi.rows() {
                    assert_eq!(
                        gi_packed.row(batch.row(slot, t)),
                        gi.row(t),
                        "input grad diverges (sample {orig}, step {t})"
                    );
                }
            }
        }
        check::<RnnCell>(31);
        check::<crate::GruCell>(32);
        check::<crate::LstmCell>(33);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut rng = seeded_rng(8);
        let cell = RnnCell::new(2, 2, &mut rng);
        let _ = cell.forward(Matrix::zeros(0, 2));
    }
}
