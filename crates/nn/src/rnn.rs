//! Vanilla (Elman) recurrent cells with backpropagation-through-time, and
//! the bidirectional / two-stacked configurations of the paper's §4.3.
//!
//! The recurrence implements equations (1)–(4) of the paper:
//!
//! ```text
//! z_t = Wx · x_t + Wh · h_{t-1} + b
//! h_t = tanh(z_t)
//! ```
//!
//! with row-vector convention (`h_t = tanh(x_t Wx + h_{t-1} Wh + b)`),
//! zero initial state, and full BPTT in `backward`.
//!
//! Sequences are processed at their *true* length (the data-preparation
//! pipeline guarantees at least one step), so no masking machinery is
//! needed and inference cost is proportional to actual value lengths.

use crate::Param;
use etsb_tensor::{init, Matrix};
use rand::rngs::StdRng;

/// Split a recurrent cell's 3-slot gradient slice into `(wx, wh, b)`,
/// matching the `params()` order every cell in this crate uses.
pub(crate) fn split_cell_grads<'g>(
    grads: &'g mut [Matrix],
    what: &str,
) -> (&'g mut Matrix, &'g mut Matrix, &'g mut Matrix) {
    assert_eq!(
        grads.len(),
        3,
        "{what}: expected 3 gradient slots (wx, wh, b), got {}",
        grads.len()
    );
    let (gwx, tail) = grads.split_at_mut(1);
    let (gwh, gb) = tail.split_at_mut(1);
    (&mut gwx[0], &mut gwh[0], &mut gb[0])
}

/// A recurrent cell usable inside [`BiRnn`] / [`StackedBiRnn`]: vanilla
/// ([`RnnCell`], the paper's choice), [`crate::LstmCell`] or
/// [`crate::GruCell`] (the heavier alternatives §2 argues against).
pub trait Recurrence: Clone {
    /// Cache produced by `forward`, consumed by `backward`.
    type Cache: Clone + std::fmt::Debug;

    /// Construct a cell with freshly initialized weights.
    fn with_dims(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self;

    /// Input width.
    fn input_dim(&self) -> usize;

    /// Output (hidden-state) width.
    fn hidden_dim(&self) -> usize;

    /// Run the recurrence over a `T x input_dim` sequence, producing the
    /// `T x hidden` output sequence.
    fn forward_seq(&self, inputs: Matrix) -> (Matrix, Self::Cache);

    /// BPTT: gradients on every output step (`T x hidden`) in, parameter
    /// gradients accumulated into `grads` (one slot per parameter, in
    /// [`Recurrence::params`] order) + input gradients out.
    fn backward_seq(&self, cache: &Self::Cache, grad_out: &Matrix, grads: &mut [Matrix]) -> Matrix;

    /// Parameters in a stable order.
    fn params(&self) -> Vec<&Param>;

    /// Mutable parameters in the same order.
    fn params_mut(&mut self) -> Vec<&mut Param>;
}

/// One directional vanilla RNN cell.
#[derive(Clone, Debug)]
pub struct RnnCell {
    /// Input-to-hidden weights, `input_dim x hidden`.
    pub wx: Param,
    /// Hidden-to-hidden weights, `hidden x hidden`.
    pub wh: Param,
    /// Bias, `1 x hidden`.
    pub b: Param,
}

/// Cache from [`RnnCell::forward`]: owns the inputs and the hidden-state
/// sequence (`hidden.row(t)` is `h_t`, which is also the layer output).
#[derive(Clone, Debug)]
pub struct RnnCache {
    /// The `T x input_dim` input sequence.
    pub inputs: Matrix,
    /// The `T x hidden` hidden-state sequence (also the output).
    pub hidden: Matrix,
}

impl RnnCell {
    /// New cell with Glorot input weights and a near-identity recurrent
    /// matrix (see [`init::recurrent_init`]).
    pub fn new(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        assert!(
            input_dim > 0 && hidden > 0,
            "RnnCell: dims must be positive"
        );
        Self {
            wx: Param::new(init::glorot_uniform(input_dim, hidden, rng)),
            wh: Param::new(init::recurrent_init(hidden, rng)),
            b: Param::new(Matrix::zeros(1, hidden)),
        }
    }

    /// Hidden-state width.
    pub fn hidden_dim(&self) -> usize {
        self.wh.value.rows()
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.wx.value.rows()
    }

    /// Run the recurrence over `inputs` (`T x input_dim`, `T >= 1`).
    pub fn forward(&self, inputs: Matrix) -> RnnCache {
        let t_max = inputs.rows();
        assert!(t_max > 0, "RnnCell::forward: empty sequence");
        assert_eq!(
            inputs.cols(),
            self.input_dim(),
            "RnnCell::forward: input width {} != cell input dim {}",
            inputs.cols(),
            self.input_dim()
        );
        let h = self.hidden_dim();
        let mut hidden = Matrix::zeros(t_max, h);
        let mut prev = vec![0.0_f32; h];
        for t in 0..t_max {
            // z_t = x_t Wx + h_{t-1} Wh + b
            let mut z = self.wx.value.vecmat(inputs.row(t));
            let rec = self.wh.value.vecmat(&prev);
            for ((zi, &ri), &bi) in z.iter_mut().zip(&rec).zip(self.b.value.row(0)) {
                *zi = (*zi + ri + bi).tanh();
            }
            hidden.row_mut(t).copy_from_slice(&z);
            prev = z;
        }
        RnnCache { inputs, hidden }
    }

    /// BPTT. `grad_hidden` is `dL/dh_t` for every step (`T x hidden`);
    /// parameter gradients accumulate into `grads` (slots `wx, wh, b`),
    /// and the gradient with respect to the inputs (`T x input_dim`) is
    /// returned.
    pub fn backward(&self, cache: &RnnCache, grad_hidden: &Matrix, grads: &mut [Matrix]) -> Matrix {
        let t_max = cache.hidden.rows();
        let h = self.hidden_dim();
        assert_eq!(
            grad_hidden.shape(),
            (t_max, h),
            "RnnCell::backward: grad shape {:?} != {:?}",
            grad_hidden.shape(),
            (t_max, h)
        );
        let (gwx, gwh, gb) = split_cell_grads(grads, "RnnCell::backward");
        let mut grad_inputs = Matrix::zeros(t_max, self.input_dim());
        let mut carry = vec![0.0_f32; h]; // dL/dh_t arriving from step t+1
        for t in (0..t_max).rev() {
            let h_t = cache.hidden.row(t);
            // dz_t = (dL/dh_t) * tanh'(z_t), with tanh' = 1 - h_t².
            let dz: Vec<f32> = grad_hidden
                .row(t)
                .iter()
                .zip(&carry)
                .zip(h_t)
                .map(|((&g, &c), &ht)| (g + c) * (1.0 - ht * ht))
                .collect();
            etsb_tensor::add_assign(gb.row_mut(0), &dz);
            gwx.add_outer(1.0, cache.inputs.row(t), &dz);
            if t > 0 {
                gwh.add_outer(1.0, cache.hidden.row(t - 1), &dz);
            }
            grad_inputs
                .row_mut(t)
                .copy_from_slice(&self.wx.value.matvec(&dz));
            carry = self.wh.value.matvec(&dz);
        }
        grad_inputs
    }

    /// Parameters in a stable order (for optimizers / checkpoints).
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.wx, &self.wh, &self.b]
    }

    /// Mutable parameters in the same stable order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }
}

impl Recurrence for RnnCell {
    type Cache = RnnCache;

    fn with_dims(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        RnnCell::new(input_dim, hidden, rng)
    }

    fn input_dim(&self) -> usize {
        RnnCell::input_dim(self)
    }

    fn hidden_dim(&self) -> usize {
        RnnCell::hidden_dim(self)
    }

    fn forward_seq(&self, inputs: Matrix) -> (Matrix, RnnCache) {
        let cache = self.forward(inputs);
        (cache.hidden.clone(), cache)
    }

    fn backward_seq(&self, cache: &RnnCache, grad_out: &Matrix, grads: &mut [Matrix]) -> Matrix {
        self.backward(cache, grad_out, grads)
    }

    fn params(&self) -> Vec<&Param> {
        RnnCell::params(self)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        RnnCell::params_mut(self)
    }
}

/// Reverse the row order of a matrix (time reversal).
fn reverse_rows(m: &Matrix) -> Matrix {
    let (rows, cols) = m.shape();
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        out.row_mut(rows - 1 - r).copy_from_slice(m.row(r));
    }
    out
}

/// A bidirectional recurrent layer: one forward cell, one backward cell,
/// output per step is `[h_fwd_t ‖ h_bwd_t]` (width `2 * hidden`), matching
/// Keras' `Bidirectional(..., merge_mode="concat")`. Generic over the
/// cell; the default is the paper's vanilla [`RnnCell`].
#[derive(Clone, Debug)]
pub struct BiRnn<C: Recurrence = RnnCell> {
    /// Cell consuming the sequence left-to-right.
    pub fwd: C,
    /// Cell consuming the sequence right-to-left.
    pub bwd: C,
}

/// Cache from [`BiRnn::forward`].
#[derive(Clone, Debug)]
pub struct BiRnnCache<C: Recurrence = RnnCell> {
    fwd: C::Cache,
    /// Backward-cell cache; its rows are in *reversed* time order.
    bwd: C::Cache,
    seq_len: usize,
}

impl<C: Recurrence> BiRnn<C> {
    /// New bidirectional layer with independently initialized cells.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        Self {
            fwd: C::with_dims(input_dim, hidden, rng),
            bwd: C::with_dims(input_dim, hidden, rng),
        }
    }

    /// Per-direction hidden width (output width is twice this).
    pub fn hidden_dim(&self) -> usize {
        self.fwd.hidden_dim()
    }

    /// Output width (`2 * hidden`).
    pub fn output_dim(&self) -> usize {
        2 * self.hidden_dim()
    }

    /// Run both directions; returns the `T x 2·hidden` output sequence.
    pub fn forward(&self, inputs: Matrix) -> (Matrix, BiRnnCache<C>) {
        let seq_len = inputs.rows();
        let reversed = reverse_rows(&inputs);
        let (out_fwd, fwd) = self.fwd.forward_seq(inputs);
        let (out_bwd, bwd) = self.bwd.forward_seq(reversed);
        let h = self.hidden_dim();
        let mut out = Matrix::zeros(seq_len, 2 * h);
        for t in 0..seq_len {
            out.row_mut(t)[..h].copy_from_slice(out_fwd.row(t));
            // Backward cell's state for original position t was computed at
            // reversed step T-1-t.
            out.row_mut(t)[h..].copy_from_slice(out_bwd.row(seq_len - 1 - t));
        }
        out.assert_finite("birnn", "forward(recurrent-activation)");
        (out, BiRnnCache { fwd, bwd, seq_len })
    }

    /// Backward through both directions; `grad_out` is `T x 2·hidden` in
    /// output layout, `grads` holds one slot per parameter in [`BiRnn::params`]
    /// order (fwd cell then bwd cell). Returns `T x input_dim` input
    /// gradients.
    pub fn backward(
        &self,
        cache: &BiRnnCache<C>,
        grad_out: &Matrix,
        grads: &mut [Matrix],
    ) -> Matrix {
        let t_max = cache.seq_len;
        let h = self.hidden_dim();
        assert_eq!(
            grad_out.shape(),
            (t_max, 2 * h),
            "BiRnn::backward: grad shape {:?} != {:?}",
            grad_out.shape(),
            (t_max, 2 * h)
        );
        let n_fwd = self.fwd.params().len();
        assert_eq!(
            grads.len(),
            n_fwd + self.bwd.params().len(),
            "BiRnn::backward: gradient slot count"
        );
        let (grads_fwd, grads_bwd) = grads.split_at_mut(n_fwd);
        let mut grad_fwd = Matrix::zeros(t_max, h);
        let mut grad_bwd = Matrix::zeros(t_max, h);
        for t in 0..t_max {
            grad_fwd.row_mut(t).copy_from_slice(&grad_out.row(t)[..h]);
            grad_bwd
                .row_mut(t_max - 1 - t)
                .copy_from_slice(&grad_out.row(t)[h..]);
        }
        let gi_fwd = self.fwd.backward_seq(&cache.fwd, &grad_fwd, grads_fwd);
        let gi_bwd_rev = self.bwd.backward_seq(&cache.bwd, &grad_bwd, grads_bwd);
        let mut grad_inputs = gi_fwd;
        let gi_bwd = reverse_rows(&gi_bwd_rev);
        grad_inputs.add_assign(&gi_bwd);
        grad_inputs.assert_finite("birnn", "backward(grad-in)");
        grad_inputs
    }

    /// Parameters of both cells (stable order: fwd then bwd).
    pub fn params(&self) -> Vec<&Param> {
        let mut p = self.fwd.params();
        p.extend(self.bwd.params());
        p
    }

    /// Mutable parameters in the same order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let (f, b) = (&mut self.fwd, &mut self.bwd);
        let mut p = f.params_mut();
        p.extend(b.params_mut());
        p
    }
}

/// The paper's *two-stacked* bidirectional RNN (§4.3): two [`BiRnn`] layers
/// in series, the second consuming the first's full output sequence; the
/// layer output is the concatenation of the second layer's two final
/// states (`[fwd_{T-1} ‖ bwd after consuming x_0]`), i.e. Keras'
/// `Bidirectional(SimpleRNN(h, return_sequences=True))` followed by
/// `Bidirectional(SimpleRNN(h))`. Generic over the recurrent cell.
#[derive(Clone, Debug)]
pub struct StackedBiRnn<C: Recurrence = RnnCell> {
    /// First bidirectional layer (`input_dim -> 2h`).
    pub layer1: BiRnn<C>,
    /// Second bidirectional layer (`2h -> 2h`).
    pub layer2: BiRnn<C>,
}

/// Cache from [`StackedBiRnn::forward`].
#[derive(Clone, Debug)]
pub struct StackedBiRnnCache<C: Recurrence = RnnCell> {
    l1: BiRnnCache<C>,
    l2: BiRnnCache<C>,
    seq_len: usize,
}

impl<C: Recurrence> StackedBiRnn<C> {
    /// New two-stacked bidirectional RNN with `hidden` units per direction.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        Self {
            layer1: BiRnn::new(input_dim, hidden, rng),
            layer2: BiRnn::new(2 * hidden, hidden, rng),
        }
    }

    /// Width of the final feature vector (`2 * hidden`).
    pub fn output_dim(&self) -> usize {
        self.layer2.output_dim()
    }

    /// Encode a sequence into a `2·hidden` feature vector.
    pub fn forward(&self, inputs: Matrix) -> (Vec<f32>, StackedBiRnnCache<C>) {
        let seq_len = inputs.rows();
        let (seq1, l1) = self.layer1.forward(inputs);
        let (seq2, l2) = self.layer2.forward(seq1);
        let h = self.layer2.hidden_dim();
        let t_last = seq_len - 1;
        let mut out = vec![0.0_f32; 2 * h];
        // Final forward state lives in the last output row's first half;
        // the backward cell's final state (after consuming x_0) lives in
        // the *first* output row's second half.
        out[..h].copy_from_slice(&seq2.row(t_last)[..h]);
        out[h..].copy_from_slice(&seq2.row(0)[h..]);
        (out, StackedBiRnnCache { l1, l2, seq_len })
    }

    /// Backward from a gradient on the final feature vector; `grads` holds
    /// one slot per parameter in [`StackedBiRnn::params`] order (layer1
    /// then layer2). Returns the gradient with respect to the input
    /// sequence.
    pub fn backward(
        &self,
        cache: &StackedBiRnnCache<C>,
        grad_out: &[f32],
        grads: &mut [Matrix],
    ) -> Matrix {
        let h = self.layer2.hidden_dim();
        assert_eq!(grad_out.len(), 2 * h, "StackedBiRnn::backward: grad width");
        let n_l1 = self.layer1.params().len();
        assert_eq!(
            grads.len(),
            n_l1 + self.layer2.params().len(),
            "StackedBiRnn::backward: gradient slot count"
        );
        let (grads_l1, grads_l2) = grads.split_at_mut(n_l1);
        let t_max = cache.seq_len;
        let mut grad_seq2 = Matrix::zeros(t_max, 2 * h);
        grad_seq2.row_mut(t_max - 1)[..h].copy_from_slice(&grad_out[..h]);
        grad_seq2.row_mut(0)[h..].copy_from_slice(&grad_out[h..]);
        let grad_seq1 = self.layer2.backward(&cache.l2, &grad_seq2, grads_l2);
        self.layer1.backward(&cache.l1, &grad_seq1, grads_l1)
    }

    /// All parameters (layer1 then layer2, each fwd then bwd).
    pub fn params(&self) -> Vec<&Param> {
        let mut p = self.layer1.params();
        p.extend(self.layer2.params());
        p
    }

    /// Mutable parameters in the same order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let (l1, l2) = (&mut self.layer1, &mut self.layer2);
        let mut p = l1.params_mut();
        p.extend(l2.params_mut());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_tensor::init::seeded_rng;

    #[test]
    fn rnn_forward_shapes_and_state_propagation() {
        let mut rng = seeded_rng(1);
        let cell = RnnCell::new(3, 4, &mut rng);
        let inputs = Matrix::from_fn(5, 3, |i, j| (i as f32 - j as f32) * 0.1);
        let cache = cell.forward(inputs.clone());
        assert_eq!(cache.hidden.shape(), (5, 4));
        // Same input at t=0 and t=1 but different hidden states because of
        // the recurrence (h_0 feeds into h_1).
        let constant = Matrix::from_fn(2, 3, |_, _| 0.3);
        let c2 = cell.forward(constant);
        assert_ne!(c2.hidden.row(0), c2.hidden.row(1));
    }

    #[test]
    fn rnn_outputs_bounded_by_tanh() {
        let mut rng = seeded_rng(2);
        let cell = RnnCell::new(2, 8, &mut rng);
        let inputs = Matrix::from_fn(20, 2, |i, _| i as f32);
        let cache = cell.forward(inputs);
        assert!(cache.hidden.as_slice().iter().all(|&x| x.abs() <= 1.0));
    }

    #[test]
    fn single_step_sequence_works() {
        let mut rng = seeded_rng(3);
        let s: StackedBiRnn = StackedBiRnn::new(4, 3, &mut rng);
        let (out, _) = s.forward(Matrix::from_fn(1, 4, |_, j| j as f32 * 0.1));
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn birnn_is_symmetric_under_reversal_with_swapped_cells() {
        // Running BiRnn on a reversed sequence with fwd/bwd cells swapped
        // must produce the row-reversed, half-swapped output.
        let mut rng = seeded_rng(4);
        let b: BiRnn = BiRnn::new(3, 2, &mut rng);
        let swapped = BiRnn {
            fwd: b.bwd.clone(),
            bwd: b.fwd.clone(),
        };
        let x = Matrix::from_fn(6, 3, |i, j| ((i * 3 + j) as f32).sin());
        let (out, _) = b.forward(x.clone());
        let (out_rev, _) = swapped.forward(reverse_rows(&x));
        let h = 2;
        for t in 0..6 {
            let orig = out.row(t);
            let mirrored = out_rev.row(5 - t);
            assert!(etsb_tensor::max_abs_diff(&orig[..h], &mirrored[h..]) < 1e-6);
            assert!(etsb_tensor::max_abs_diff(&orig[h..], &mirrored[..h]) < 1e-6);
        }
    }

    #[test]
    fn stacked_output_dim() {
        let mut rng = seeded_rng(5);
        let s: StackedBiRnn = StackedBiRnn::new(10, 64, &mut rng);
        assert_eq!(s.output_dim(), 128);
        assert_eq!(s.params().len(), 12);
    }

    /// Full BPTT gradient check on a tiny cell: perturb every weight and
    /// compare the analytic gradient of a scalar loss (sum of all hidden
    /// states) against central differences.
    #[test]
    fn rnn_cell_gradient_check() {
        let mut rng = seeded_rng(6);
        let cell = RnnCell::new(2, 3, &mut rng);
        let inputs = Matrix::from_fn(4, 2, |i, j| ((i + j) as f32 * 0.7).sin() * 0.5);

        let loss = |c: &RnnCell| c.forward(inputs.clone()).hidden.sum();

        let cache = cell.forward(inputs.clone());
        let ones = Matrix::full(4, 3, 1.0);
        let mut grads = crate::param::grad_buffer_for(&cell.params());
        let grad_inputs = cell.backward(&cache, &ones, grads.slots_mut());

        let h = 1e-3_f32;
        // Check a selection of weights in each parameter.
        for (pi, coords) in [(0, (1, 2)), (1, (0, 1)), (2, (0, 2))] {
            let analytic = grads.slot(pi)[coords];
            let mut plus = cell.clone();
            plus.params_mut()[pi].value[coords] += h;
            let mut minus = cell.clone();
            minus.params_mut()[pi].value[coords] -= h;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * h);
            assert!(
                (numeric - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
                "param {pi} {coords:?}: numeric {numeric} vs analytic {analytic}"
            );
        }
        // And the input gradient.
        let analytic = grad_inputs[(1, 0)];
        let mut xp = inputs.clone();
        xp[(1, 0)] += h;
        let mut xm = inputs.clone();
        xm[(1, 0)] -= h;
        let numeric = (cell.forward(xp).hidden.sum() - cell.forward(xm).hidden.sum()) / (2.0 * h);
        assert!(
            (numeric - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
            "input grad: numeric {numeric} vs analytic {analytic}"
        );
    }

    /// Gradient check through the full two-stacked bidirectional network.
    #[test]
    fn stacked_birnn_gradient_check() {
        let mut rng = seeded_rng(7);
        let net = StackedBiRnn::new(2, 2, &mut rng);
        let inputs = Matrix::from_fn(3, 2, |i, j| ((i * 2 + j) as f32 * 0.9).cos() * 0.4);

        let loss = |n: &StackedBiRnn| n.forward(inputs.clone()).0.iter().sum::<f32>();

        let (out, cache) = net.forward(inputs.clone());
        let mut grads = crate::param::grad_buffer_for(&net.params());
        let grad_inputs = net.backward(&cache, &vec![1.0; out.len()], grads.slots_mut());

        let h = 1e-3_f32;
        // One weight from every cell of both layers.
        for pi in 0..12 {
            let analytic = grads.slot(pi)[(0, 0)];
            let mut plus = net.clone();
            plus.params_mut()[pi].value[(0, 0)] += h;
            let mut minus = net.clone();
            minus.params_mut()[pi].value[(0, 0)] -= h;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * h);
            assert!(
                (numeric - analytic).abs() < 3e-2 * analytic.abs().max(1.0),
                "param {pi}: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Input gradient.
        let analytic = grad_inputs[(2, 1)];
        let mut xp = inputs.clone();
        xp[(2, 1)] += h;
        let mut xm = inputs.clone();
        xm[(2, 1)] -= h;
        let loss_of = |x: Matrix| net.forward(x).0.iter().sum::<f32>();
        let numeric = (loss_of(xp) - loss_of(xm)) / (2.0 * h);
        assert!(
            (numeric - analytic).abs() < 3e-2 * analytic.abs().max(1.0),
            "input grad: numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut rng = seeded_rng(8);
        let cell = RnnCell::new(2, 2, &mut rng);
        let _ = cell.forward(Matrix::zeros(0, 2));
    }
}
