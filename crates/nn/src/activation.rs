//! Element-wise activation functions and their derivatives.

use serde::{Deserialize, Serialize};

/// Activation applied element-wise by [`crate::Dense`] layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity.
    Linear,
    /// Hyperbolic tangent — used inside the paper's RNN gates.
    Tanh,
    /// Rectified linear unit — used in the paper's dense heads.
    Relu,
}

impl Activation {
    /// Apply the activation to a single value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Linear => x,
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
        }
    }

    /// Derivative expressed in terms of the *output* `y = f(x)`.
    ///
    /// All three activations admit this form (`tanh' = 1 - y²`,
    /// `relu' = [y > 0]`), which lets `backward` passes avoid caching
    /// pre-activations.
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Linear => 1.0,
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_matches_definitions() {
        assert_eq!(Activation::Linear.apply(-2.5), -2.5);
        assert_eq!(Activation::Relu.apply(-2.5), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
        assert!((Activation::Tanh.apply(0.5) - 0.5_f32.tanh()).abs() < 1e-7);
    }

    #[test]
    fn derivative_from_output_matches_finite_difference() {
        let h = 1e-3_f32;
        for act in [Activation::Linear, Activation::Tanh, Activation::Relu] {
            for &x in &[-1.2_f32, -0.3, 0.4, 1.7] {
                let y = act.apply(x);
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative_from_output(y);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }
}
