//! Batch normalization (Ioffe & Szegedy 2015), used by the paper to
//! "standardize the input to the softmax" head (§4.3.1).
//!
//! Training mode normalizes with batch statistics and maintains running
//! estimates; evaluation mode uses the running estimates, which is what
//! the best-weight checkpoint evaluates with.

use crate::Param;
use etsb_tensor::Matrix;

/// Per-feature batch normalization over `N x D` batches.
#[derive(Clone, Debug)]
pub struct BatchNorm {
    /// Learned scale, `1 x D`.
    pub gamma: Param,
    /// Learned shift, `1 x D`.
    pub beta: Param,
    /// Running mean used at evaluation time, `1 x D`.
    pub running_mean: Matrix,
    /// Running (population) variance used at evaluation time, `1 x D`.
    pub running_var: Matrix,
    /// Exponential-moving-average momentum for the running statistics.
    pub momentum: f32,
    /// Numerical-stability constant.
    pub eps: f32,
}

/// Cache from [`BatchNorm::forward_train`].
#[derive(Clone, Debug)]
pub struct BatchNormCache {
    /// Centered inputs `x - mu`, `N x D`.
    centered: Matrix,
    /// Per-feature `1/sqrt(var + eps)`, length `D`.
    inv_std: Vec<f32>,
    /// Normalized inputs, `N x D`.
    xhat: Matrix,
}

impl BatchNorm {
    /// New batch-norm layer over `dim` features (γ=1, β=0, Keras defaults:
    /// momentum 0.99, eps 1e-3).
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "BatchNorm: dim must be positive");
        Self {
            gamma: Param::new(Matrix::full(1, dim, 1.0)),
            beta: Param::new(Matrix::zeros(1, dim)),
            running_mean: Matrix::zeros(1, dim),
            running_var: Matrix::full(1, dim, 1.0),
            momentum: 0.99,
            eps: 1e-3,
        }
    }

    /// Feature width.
    pub fn dim(&self) -> usize {
        self.gamma.value.cols()
    }

    /// Training-mode forward: normalize with batch statistics and update
    /// the running estimates.
    pub fn forward_train(&mut self, inputs: &Matrix) -> (Matrix, BatchNormCache) {
        let (n, d) = inputs.shape();
        assert_eq!(
            d,
            self.dim(),
            "BatchNorm::forward_train: width {} != {}",
            d,
            self.dim()
        );
        assert!(n > 0, "BatchNorm::forward_train: empty batch");
        let nf = n as f32;

        let mut mean = vec![0.0_f32; d];
        for r in 0..n {
            etsb_tensor::add_assign(&mut mean, inputs.row(r));
        }
        etsb_tensor::scale(&mut mean, 1.0 / nf);

        let mut var = vec![0.0_f32; d];
        let mut centered = Matrix::zeros(n, d);
        for r in 0..n {
            let row = inputs.row(r);
            let c = centered.row_mut(r);
            for j in 0..d {
                let diff = row[j] - mean[j];
                c[j] = diff;
                var[j] += diff * diff;
            }
        }
        etsb_tensor::scale(&mut var, 1.0 / nf);

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();

        let mut xhat = Matrix::zeros(n, d);
        let mut out = Matrix::zeros(n, d);
        let gamma = self.gamma.value.row(0);
        let beta = self.beta.value.row(0);
        for r in 0..n {
            let c = centered.row(r);
            let xh = xhat.row_mut(r);
            let o = out.row_mut(r);
            for j in 0..d {
                xh[j] = c[j] * inv_std[j];
                o[j] = gamma[j] * xh[j] + beta[j];
            }
        }

        // Update running statistics (EMA, Keras semantics).
        let m = self.momentum;
        for j in 0..d {
            self.running_mean[(0, j)] = m * self.running_mean[(0, j)] + (1.0 - m) * mean[j];
            self.running_var[(0, j)] = m * self.running_var[(0, j)] + (1.0 - m) * var[j];
        }

        out.assert_finite("batchnorm", "forward_train");
        (
            out,
            BatchNormCache {
                centered,
                inv_std,
                xhat,
            },
        )
    }

    /// Evaluation-mode forward using the running statistics.
    pub fn forward_eval(&self, inputs: &Matrix) -> Matrix {
        let (n, d) = inputs.shape();
        assert_eq!(
            d,
            self.dim(),
            "BatchNorm::forward_eval: width {} != {}",
            d,
            self.dim()
        );
        let gamma = self.gamma.value.row(0);
        let beta = self.beta.value.row(0);
        let mut out = Matrix::zeros(n, d);
        for r in 0..n {
            let row = inputs.row(r);
            let o = out.row_mut(r);
            for j in 0..d {
                let inv = 1.0 / (self.running_var[(0, j)] + self.eps).sqrt();
                o[j] = gamma[j] * (row[j] - self.running_mean[(0, j)]) * inv + beta[j];
            }
        }
        out.assert_finite("batchnorm", "forward_eval");
        out
    }

    /// Backward through the training-mode normalization. Accumulates γ/β
    /// gradients into `grads` (slots `[gamma, beta]` in
    /// [`BatchNorm::params`] order) and returns the input gradient.
    pub fn backward(
        &self,
        cache: &BatchNormCache,
        grad_out: &Matrix,
        grads: &mut [Matrix],
    ) -> Matrix {
        let (n, d) = cache.xhat.shape();
        assert_eq!(grad_out.shape(), (n, d), "BatchNorm::backward: grad shape");
        assert_eq!(
            grads.len(),
            2,
            "BatchNorm::backward: expected 2 slots (gamma, beta)"
        );
        let nf = n as f32;
        let gamma = self.gamma.value.row(0);

        // dgamma_j = Σ_r dy_rj * xhat_rj ; dbeta_j = Σ_r dy_rj
        let mut dgamma = vec![0.0_f32; d];
        let mut dbeta = vec![0.0_f32; d];
        let mut sum_dxhat = vec![0.0_f32; d];
        let mut sum_dxhat_xhat = vec![0.0_f32; d];
        for r in 0..n {
            let dy = grad_out.row(r);
            let xh = cache.xhat.row(r);
            for j in 0..d {
                dgamma[j] += dy[j] * xh[j];
                dbeta[j] += dy[j];
                let dxhat = dy[j] * gamma[j];
                sum_dxhat[j] += dxhat;
                sum_dxhat_xhat[j] += dxhat * xh[j];
            }
        }
        let (ggamma, gbeta) = grads.split_at_mut(1);
        etsb_tensor::add_assign(ggamma[0].row_mut(0), &dgamma);
        etsb_tensor::add_assign(gbeta[0].row_mut(0), &dbeta);

        // dx = (inv_std / N) * (N*dxhat - Σdxhat - xhat * Σ(dxhat·xhat))
        let mut grad_in = Matrix::zeros(n, d);
        for r in 0..n {
            let dy = grad_out.row(r);
            let xh = cache.xhat.row(r);
            let g = grad_in.row_mut(r);
            for j in 0..d {
                let dxhat = dy[j] * gamma[j];
                g[j] =
                    cache.inv_std[j] / nf * (nf * dxhat - sum_dxhat[j] - xh[j] * sum_dxhat_xhat[j]);
            }
        }
        let _ = &cache.centered; // kept for introspection/debugging
        ggamma[0].assert_finite("batchnorm", "backward(gamma-grad)");
        grad_in.assert_finite("batchnorm", "backward(grad-in)");
        grad_in
    }

    /// Parameters in stable order (γ then β).
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    /// Mutable parameters in the same order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_tensor::{mean, stddev};

    #[test]
    fn train_forward_standardizes_batch() {
        let mut bn = BatchNorm::new(2);
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 30.0], &[5.0, 50.0], &[7.0, 70.0]]);
        let (y, _) = bn.forward_train(&x);
        for j in 0..2 {
            let col = y.col(j);
            assert!(mean(&col).abs() < 1e-5, "column {j} mean {}", mean(&col));
            // Population std ≈ 1 (slightly below because of eps).
            assert!(
                (stddev(&col) - 1.0).abs() < 0.05,
                "column {j} std {}",
                stddev(&col)
            );
        }
    }

    #[test]
    fn running_stats_converge_to_batch_stats() {
        let mut bn = BatchNorm::new(1);
        bn.momentum = 0.5;
        let x = Matrix::from_rows(&[&[2.0], &[6.0]]); // mean 4, var 4
        for _ in 0..40 {
            let _ = bn.forward_train(&x);
        }
        assert!((bn.running_mean[(0, 0)] - 4.0).abs() < 1e-3);
        assert!((bn.running_var[(0, 0)] - 4.0).abs() < 1e-3);
        // Eval mode with converged stats reproduces the train normalization.
        let y = bn.forward_eval(&x);
        assert!((y[(0, 0)] + 1.0).abs() < 0.01);
        assert!((y[(1, 0)] - 1.0).abs() < 0.01);
    }

    #[test]
    fn gamma_beta_scale_and_shift() {
        let mut bn = BatchNorm::new(1);
        bn.gamma.value[(0, 0)] = 3.0;
        bn.beta.value[(0, 0)] = 1.0;
        let x = Matrix::from_rows(&[&[-1.0], &[1.0]]);
        let (y, _) = bn.forward_train(&x);
        // xhat = ±1/sqrt(1+eps) ≈ ±0.9995 → y ≈ 1 ∓ 3·0.9995
        assert!((y[(0, 0)] - (1.0 - 3.0 * (1.0_f32 / 1.001).sqrt())).abs() < 1e-3);
        assert!((y[(1, 0)] - (1.0 + 3.0 * (1.0_f32 / 1.001).sqrt())).abs() < 1e-3);
    }

    #[test]
    fn gradient_check() {
        let mut bn = BatchNorm::new(3);
        // Make gamma/beta non-trivial so their gradients are exercised.
        bn.gamma.value = Matrix::from_rows(&[&[1.5, 0.8, 1.1]]);
        bn.beta.value = Matrix::from_rows(&[&[0.2, -0.4, 0.0]]);
        let x = Matrix::from_fn(5, 3, |i, j| ((i * 3 + j) as f32 * 0.47).sin());

        // Scalar loss: weighted sum so per-column grads differ.
        let weights = Matrix::from_fn(5, 3, |i, j| 0.3 + (i as f32) * 0.1 - (j as f32) * 0.2);
        let loss = |bn: &BatchNorm, x: &Matrix| {
            let mut b = bn.clone();
            let (y, _) = b.forward_train(x);
            y.hadamard(&weights).sum()
        };

        let mut work = bn.clone();
        let (_, cache) = work.forward_train(&x);
        let mut grads = crate::param::grad_buffer_for(&work.params());
        let grad_in = work.backward(&cache, &weights, grads.slots_mut());

        let h = 1e-3_f32;
        // Parameter gradients.
        for (pi, coords) in [(0usize, (0usize, 1usize)), (1, (0, 2))] {
            let analytic = grads.slot(pi)[coords];
            let mut plus = bn.clone();
            plus.params_mut()[pi].value[coords] += h;
            let mut minus = bn.clone();
            minus.params_mut()[pi].value[coords] -= h;
            let numeric = (loss(&plus, &x) - loss(&minus, &x)) / (2.0 * h);
            assert!(
                (numeric - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
                "param {pi}: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Input gradient (the hard part: batch statistics depend on x).
        for coords in [(0, 0), (2, 1), (4, 2)] {
            let analytic = grad_in[coords];
            let mut xp = x.clone();
            xp[coords] += h;
            let mut xm = x.clone();
            xm[coords] -= h;
            let numeric = (loss(&bn, &xp) - loss(&bn, &xm)) / (2.0 * h);
            assert!(
                (numeric - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
                "input {coords:?}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn eval_does_not_mutate_running_stats() {
        let mut bn = BatchNorm::new(2);
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let _ = bn.forward_train(&x);
        let before = bn.running_mean.clone();
        let _ = bn.forward_eval(&x);
        assert_eq!(bn.running_mean, before);
    }
}
