//! Loss functions.
//!
//! The paper trains with "binary cross-entropy" over a two-way softmax
//! head (§4.3.1/§5.2); for a two-class softmax those are the same
//! function, implemented here as the numerically fused softmax +
//! cross-entropy whose gradient is simply `p - onehot(y)`.

use etsb_tensor::Matrix;

/// Result of a loss evaluation over a batch.
#[derive(Clone, Debug)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Class probabilities after softmax, `N x C`.
    pub probs: Matrix,
    /// Gradient of the *mean* loss with respect to the logits, `N x C`.
    pub grad_logits: Matrix,
}

/// Fused softmax + categorical cross-entropy.
///
/// `logits` is `N x C`; `labels[i]` is the true class of row `i`.
///
/// # Panics
/// If `labels.len() != N`, a label is out of range, or the batch is empty.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> LossOutput {
    let (n, c) = logits.shape();
    assert!(n > 0, "softmax_cross_entropy: empty batch");
    assert_eq!(
        labels.len(),
        n,
        "softmax_cross_entropy: {} labels for {n} rows",
        labels.len()
    );
    let nf = n as f32;

    let mut probs = logits.clone();
    let mut loss = 0.0;
    for (r, &label) in labels.iter().enumerate() {
        assert!(
            label < c,
            "softmax_cross_entropy: label {label} out of range for {c} classes"
        );
        let row = probs.row_mut(r);
        etsb_tensor::softmax_inplace(row);
        // Clamp avoids -inf when a probability underflows to exactly 0.
        loss -= row[label].max(1e-12).ln();
    }
    loss /= nf;

    let mut grad = probs.clone();
    for (r, &label) in labels.iter().enumerate() {
        let row = grad.row_mut(r);
        row[label] -= 1.0;
        etsb_tensor::scale(row, 1.0 / nf);
    }

    etsb_tensor::sanitize::assert_finite("loss", "softmax_cross_entropy(loss)", &[loss]);
    probs.assert_finite("loss", "softmax_cross_entropy(probs)");
    grad.assert_finite("loss", "softmax_cross_entropy(grad-logits)");
    LossOutput {
        loss,
        probs,
        grad_logits: grad,
    }
}

/// Plain binary cross-entropy on probabilities in `[0, 1]`.
///
/// Provided for the logistic-regression classifiers in the Raha baseline;
/// the neural models use [`softmax_cross_entropy`]. Returns
/// `(mean loss, d loss / d p)` where the gradient is per-element of `p`.
pub fn binary_cross_entropy(p: &[f32], y: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(p.len(), y.len(), "binary_cross_entropy: length mismatch");
    assert!(!p.is_empty(), "binary_cross_entropy: empty batch");
    let nf = p.len() as f32;
    let mut loss = 0.0;
    let mut grad = Vec::with_capacity(p.len());
    for (&pi, &yi) in p.iter().zip(y) {
        let pc = pi.clamp(1e-7, 1.0 - 1e-7);
        loss -= yi * pc.ln() + (1.0 - yi) * (1.0 - pc).ln();
        grad.push((pc - yi) / (pc * (1.0 - pc)) / nf);
    }
    (loss / nf, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let logits = Matrix::from_rows(&[&[10.0, -10.0], &[-10.0, 10.0]]);
        let out = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(out.loss < 1e-6);
    }

    #[test]
    fn uniform_logits_give_ln_c() {
        let logits = Matrix::zeros(3, 4);
        let out = softmax_cross_entropy(&logits, &[0, 1, 2]);
        assert!((out.loss - 4.0_f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn probs_are_normalized() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let out = softmax_cross_entropy(&logits, &[2]);
        assert!((out.probs.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.5, -0.3], &[0.1, 0.9]]);
        let labels = [1, 0];
        let out = softmax_cross_entropy(&logits, &labels);
        let h = 1e-3_f32;
        for coords in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let mut lp = logits.clone();
            lp[coords] += h;
            let mut lm = logits.clone();
            lm[coords] -= h;
            let numeric = (softmax_cross_entropy(&lp, &labels).loss
                - softmax_cross_entropy(&lm, &labels).loss)
                / (2.0 * h);
            let analytic = out.grad_logits[coords];
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "{coords:?}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn extreme_logits_stay_finite() {
        let logits = Matrix::from_rows(&[&[1000.0, -1000.0]]);
        let out = softmax_cross_entropy(&logits, &[1]);
        assert!(out.loss.is_finite());
        assert!(out.grad_logits.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn bce_basics() {
        let (loss, grad) = binary_cross_entropy(&[0.9, 0.1], &[1.0, 0.0]);
        assert!(loss < 0.2);
        assert_eq!(grad.len(), 2);
        // Pushing p toward the label reduces loss: grads point the right way.
        assert!(grad[0] < 0.0); // p should increase
        assert!(grad[1] > 0.0); // p should decrease
    }

    #[test]
    fn bce_clamps_extremes() {
        let (loss, grad) = binary_cross_entropy(&[0.0, 1.0], &[1.0, 0.0]);
        assert!(loss.is_finite());
        assert!(grad.iter().all(|g| g.is_finite()));
    }
}
