//! GRU cell (Cho et al. 2014) with full BPTT.
//!
//! Classic (reset-before) formulation:
//!
//! ```text
//! z_t = σ(x_t Wxz + h_{t-1} Whz + bz)         update gate
//! r_t = σ(x_t Wxr + h_{t-1} Whr + br)         reset gate
//! n_t = tanh(x_t Wxn + r_t ⊙ (h_{t-1} Whn) + bn)
//! h_t = (1 - z_t) ⊙ n_t + z_t ⊙ h_{t-1}
//! ```
//!
//! Gate layout in the fused weight matrices: `[z, r, n]`.

use crate::batch::{accumulate_seq_grads, SeqBatch};
use crate::rnn::{split_cell_grads, Recurrence};
use crate::Param;
use etsb_tensor::{init, KernelPolicy, Matrix, Workspace};
use rand::rngs::StdRng;

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A GRU cell with fused gate weights.
#[derive(Clone, Debug)]
pub struct GruCell {
    /// Input weights, `input_dim x 3·hidden` (gates z, r, n).
    pub wx: Param,
    /// Recurrent weights, `hidden x 3·hidden`.
    pub wh: Param,
    /// Bias, `1 x 3·hidden`.
    pub b: Param,
    hidden: usize,
}

/// Cache from [`GruCell::forward_seq`].
#[derive(Clone, Debug, Default)]
pub struct GruCache {
    inputs: Matrix,
    /// Activated gates per step, `T x 3·hidden`: `[z, r, n]`.
    gates: Matrix,
    /// The pre-reset hidden contribution `h_{t-1} Whn`, `T x hidden`
    /// (needed for the reset-gate gradient).
    hn: Matrix,
    /// Hidden states (outputs), `T x hidden`.
    hidden: Matrix,
}

impl GruCell {
    /// New cell with Glorot weights and zero bias.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        assert!(
            input_dim > 0 && hidden > 0,
            "GruCell: dims must be positive"
        );
        Self {
            wx: Param::new(init::glorot_uniform(input_dim, 3 * hidden, rng)),
            wh: Param::new(init::glorot_uniform(hidden, 3 * hidden, rng)),
            b: Param::new(Matrix::zeros(1, 3 * hidden)),
            hidden,
        }
    }
}

impl Recurrence for GruCell {
    type Cache = GruCache;

    fn with_dims(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        GruCell::new(input_dim, hidden, rng)
    }

    fn input_dim(&self) -> usize {
        self.wx.value.rows()
    }

    fn hidden_dim(&self) -> usize {
        self.hidden
    }

    fn forward_seq(&self, inputs: Matrix) -> (Matrix, GruCache) {
        let t_max = inputs.rows();
        assert!(t_max > 0, "GruCell::forward_seq: empty sequence");
        assert_eq!(
            inputs.cols(),
            self.input_dim(),
            "GruCell: input width mismatch"
        );
        let h = self.hidden;
        let mut gates = Matrix::zeros(t_max, 3 * h);
        let mut hn_all = Matrix::zeros(t_max, h);
        let mut hidden = Matrix::zeros(t_max, h);
        let mut h_prev = vec![0.0_f32; h];
        for t in 0..t_max {
            let zx = self.wx.value.vecmat(inputs.row(t));
            let zh = self.wh.value.vecmat(&h_prev);
            let b = self.b.value.row(0);
            let g_row = gates.row_mut(t);
            let hn_row = hn_all.row_mut(t);
            for j in 0..h {
                g_row[j] = sigmoid(zx[j] + zh[j] + b[j]); // z
                g_row[h + j] = sigmoid(zx[h + j] + zh[h + j] + b[h + j]); // r
                hn_row[j] = zh[2 * h + j];
            }
            for j in 0..h {
                let n = (zx[2 * h + j] + g_row[h + j] * hn_row[j] + b[2 * h + j]).tanh();
                g_row[2 * h + j] = n;
            }
            let h_row = hidden.row_mut(t);
            for j in 0..h {
                let z = g_row[j];
                h_row[j] = (1.0 - z) * g_row[2 * h + j] + z * h_prev[j];
            }
            h_prev.copy_from_slice(h_row);
        }
        let out = hidden.clone();
        (
            out,
            GruCache {
                inputs,
                gates,
                hn: hn_all,
                hidden,
            },
        )
    }

    fn backward_seq(&self, cache: &GruCache, grad_out: &Matrix, grads: &mut [Matrix]) -> Matrix {
        let t_max = cache.hidden.rows();
        let h = self.hidden;
        assert_eq!(
            grad_out.shape(),
            (t_max, h),
            "GruCell::backward_seq: grad shape"
        );
        let (gwx, gwh, gb) = split_cell_grads(grads, "GruCell::backward_seq");
        let mut dh_carry = vec![0.0_f32; h];
        // Gradient w.r.t. the pre-activations feeding Wx (dz_x) and the
        // hidden-side products feeding Wh (dz_h): they differ only in the
        // candidate slot, where the hidden path is gated by r.
        let mut dzx_all = Matrix::zeros(t_max, 3 * h);
        let mut dzh_all = Matrix::zeros(t_max, 3 * h);
        let wht = self.wh.value.transpose();
        let zero = vec![0.0_f32; h];
        for t in (0..t_max).rev() {
            let gates = cache.gates.row(t);
            let hn = cache.hn.row(t);
            let h_prev: &[f32] = if t > 0 {
                cache.hidden.row(t - 1)
            } else {
                &zero
            };
            let mut dh_prev_direct = vec![0.0_f32; h];
            let dz_x = dzx_all.row_mut(t);
            let dz_h = dzh_all.row_mut(t);
            for j in 0..h {
                let (z, r, n) = (gates[j], gates[h + j], gates[2 * h + j]);
                let dh = grad_out.row(t)[j] + dh_carry[j];
                let dz_gate = dh * (h_prev[j] - n) * z * (1.0 - z);
                let dn = dh * (1.0 - z) * (1.0 - n * n);
                let dr = dn * hn[j] * r * (1.0 - r);
                dz_x[j] = dz_gate;
                dz_x[h + j] = dr;
                dz_x[2 * h + j] = dn;
                dz_h[j] = dz_gate;
                dz_h[h + j] = dr;
                dz_h[2 * h + j] = dn * r;
                dh_prev_direct[j] = dh * z;
            }
            etsb_tensor::add_assign(gb.row_mut(0), dzx_all.row(t));
            dh_carry = wht.vecmat(dzh_all.row(t));
            etsb_tensor::add_assign(&mut dh_carry, &dh_prev_direct);
        }
        // Weight gradients batched over the whole sequence: bitwise
        // identical to ascending per-step `add_outer` calls (and therefore
        // to `backward_seq_into`, which uses the same kernels).
        let mut col = Vec::new();
        gwx.add_transposed_matmul(&cache.inputs, 0, &dzx_all, 0, t_max, &mut col);
        if t_max > 1 {
            gwh.add_transposed_matmul(&cache.hidden, 0, &dzh_all, 1, t_max - 1, &mut col);
        }
        dzx_all.matmul(&self.wx.value.transpose())
    }

    fn forward_seq_into(&self, inputs: &Matrix, cache: &mut GruCache, ws: &mut Workspace) {
        let t_max = inputs.rows();
        assert!(t_max > 0, "GruCell::forward_seq: empty sequence");
        assert_eq!(
            inputs.cols(),
            self.input_dim(),
            "GruCell: input width mismatch"
        );
        let h = self.hidden;
        cache.inputs.copy_from(inputs);
        cache.gates.resize_zeroed(t_max, 3 * h);
        cache.hn.resize_zeroed(t_max, h);
        cache.hidden.resize_zeroed(t_max, h);
        let mut zx_all = ws.take_mat("gru.zx_all", 0, 0);
        inputs.matmul_into(&self.wx.value, &mut zx_all);
        let mut zh = ws.take_vec("gru.zh", 3 * h);
        let mut h_prev = ws.take_vec("gru.h_prev", h);
        for t in 0..t_max {
            self.wh.value.vecmat_into(&h_prev, &mut zh);
            let zx = zx_all.row(t);
            let b = self.b.value.row(0);
            let g_row = cache.gates.row_mut(t);
            let hn_row = cache.hn.row_mut(t);
            for j in 0..h {
                g_row[j] = sigmoid(zx[j] + zh[j] + b[j]); // z
                g_row[h + j] = sigmoid(zx[h + j] + zh[h + j] + b[h + j]); // r
                hn_row[j] = zh[2 * h + j];
            }
            for j in 0..h {
                let n = (zx[2 * h + j] + g_row[h + j] * hn_row[j] + b[2 * h + j]).tanh();
                g_row[2 * h + j] = n;
            }
            let h_row = cache.hidden.row_mut(t);
            let g_row = cache.gates.row(t);
            for j in 0..h {
                let z = g_row[j];
                h_row[j] = (1.0 - z) * g_row[2 * h + j] + z * h_prev[j];
            }
            h_prev.copy_from_slice(h_row);
        }
        ws.put_vec("gru.h_prev", h_prev);
        ws.put_vec("gru.zh", zh);
        ws.put_mat("gru.zx_all", zx_all);
    }

    fn seq_output(cache: &GruCache) -> &Matrix {
        &cache.hidden
    }

    fn backward_seq_into(
        &self,
        cache: &GruCache,
        grad_out: &Matrix,
        grads: &mut [Matrix],
        grad_inputs: &mut Matrix,
        ws: &mut Workspace,
    ) {
        let t_max = cache.hidden.rows();
        let h = self.hidden;
        assert_eq!(
            grad_out.shape(),
            (t_max, h),
            "GruCell::backward_seq_into: grad shape"
        );
        let (gwx, gwh, gb) = split_cell_grads(grads, "GruCell::backward_seq_into");
        let mut dzx_all = ws.take_mat("gru.dzx_all", t_max, 3 * h);
        let mut dzh_all = ws.take_mat("gru.dzh_all", t_max, 3 * h);
        let mut wht = ws.take_mat("gru.wht", 0, 0);
        self.wh.value.transpose_into(&mut wht);
        let mut dh_carry = ws.take_vec("gru.dh_carry", h);
        let mut dh_prev_direct = ws.take_vec("gru.dh_prev_direct", h);
        let zero = ws.take_vec("gru.zero", h);
        for t in (0..t_max).rev() {
            let gates = cache.gates.row(t);
            let hn = cache.hn.row(t);
            let h_prev: &[f32] = if t > 0 {
                cache.hidden.row(t - 1)
            } else {
                &zero
            };
            let dz_x = dzx_all.row_mut(t);
            let dz_h = dzh_all.row_mut(t);
            for j in 0..h {
                let (z, r, n) = (gates[j], gates[h + j], gates[2 * h + j]);
                let dh = grad_out.row(t)[j] + dh_carry[j];
                let dz_gate = dh * (h_prev[j] - n) * z * (1.0 - z);
                let dn = dh * (1.0 - z) * (1.0 - n * n);
                let dr = dn * hn[j] * r * (1.0 - r);
                dz_x[j] = dz_gate;
                dz_x[h + j] = dr;
                dz_x[2 * h + j] = dn;
                dz_h[j] = dz_gate;
                dz_h[h + j] = dr;
                dz_h[2 * h + j] = dn * r;
                dh_prev_direct[j] = dh * z;
            }
            etsb_tensor::add_assign(gb.row_mut(0), dzx_all.row(t));
            wht.vecmat_into(dzh_all.row(t), &mut dh_carry);
            etsb_tensor::add_assign(&mut dh_carry, &dh_prev_direct);
        }
        // Weight gradients batched over the whole sequence: bitwise
        // identical to ascending per-step `add_outer` calls.
        let mut col = ws.take_vec("gru.col", 0);
        gwx.add_transposed_matmul(&cache.inputs, 0, &dzx_all, 0, t_max, &mut col);
        if t_max > 1 {
            gwh.add_transposed_matmul(&cache.hidden, 0, &dzh_all, 1, t_max - 1, &mut col);
        }
        let mut wxt = ws.take_mat("gru.wxt", 0, 0);
        self.wx.value.transpose_into(&mut wxt);
        dzx_all.matmul_into(&wxt, grad_inputs);
        ws.put_mat("gru.wxt", wxt);
        ws.put_mat("gru.wht", wht);
        ws.put_vec("gru.col", col);
        ws.put_vec("gru.zero", zero);
        ws.put_vec("gru.dh_prev_direct", dh_prev_direct);
        ws.put_vec("gru.dh_carry", dh_carry);
        ws.put_mat("gru.dzh_all", dzh_all);
        ws.put_mat("gru.dzx_all", dzx_all);
    }

    fn forward_batch_into(
        &self,
        packed: &Matrix,
        batch: &SeqBatch,
        cache: &mut GruCache,
        ws: &mut Workspace,
        policy: KernelPolicy,
    ) {
        assert_eq!(
            packed.shape(),
            (batch.total_rows(), self.input_dim()),
            "GruCell::forward_batch_into: packed shape {:?} != {:?}",
            packed.shape(),
            (batch.total_rows(), self.input_dim())
        );
        let h = self.hidden;
        let total = batch.total_rows();
        cache.inputs.copy_from(packed);
        cache.gates.resize_zeroed(total, 3 * h);
        cache.hn.resize_zeroed(total, h);
        cache.hidden.resize_zeroed(total, h);
        let mut zx_all = ws.take_mat("gru.bzx_all", 0, 0);
        packed.matmul_window_policy_into(0, packed.rows(), &self.wx.value, &mut zx_all, policy);
        let mut zh_blk = ws.take_mat("gru.bzh", 0, 0);
        let mut h_prev_blk = ws.take_mat("gru.bh_prev", 0, 0);
        for t in 0..batch.t_max() {
            let n_act = batch.active(t);
            let off = batch.offset(t);
            h_prev_blk.resize_zeroed(n_act, h);
            if t == 0 {
                // h_{-1} = 0: recurrent product and prior state are zero.
                zh_blk.resize_zeroed(n_act, 3 * h);
            } else {
                let prev_off = batch.offset(t - 1);
                cache.hidden.matmul_window_policy_into(
                    prev_off,
                    n_act,
                    &self.wh.value,
                    &mut zh_blk,
                    policy,
                );
                for s in 0..n_act {
                    h_prev_blk
                        .row_mut(s)
                        .copy_from_slice(cache.hidden.row(prev_off + s));
                }
            }
            for s in 0..n_act {
                let zx = zx_all.row(off + s);
                let zh = zh_blk.row(s);
                let h_prev = h_prev_blk.row(s);
                let b = self.b.value.row(0);
                let g_row = cache.gates.row_mut(off + s);
                let hn_row = cache.hn.row_mut(off + s);
                for j in 0..h {
                    g_row[j] = sigmoid(zx[j] + zh[j] + b[j]); // z
                    g_row[h + j] = sigmoid(zx[h + j] + zh[h + j] + b[h + j]); // r
                    hn_row[j] = zh[2 * h + j];
                }
                for j in 0..h {
                    let n = (zx[2 * h + j] + g_row[h + j] * hn_row[j] + b[2 * h + j]).tanh();
                    g_row[2 * h + j] = n;
                }
                let h_row = cache.hidden.row_mut(off + s);
                let g_row = cache.gates.row(off + s);
                for j in 0..h {
                    let z = g_row[j];
                    h_row[j] = (1.0 - z) * g_row[2 * h + j] + z * h_prev[j];
                }
            }
        }
        ws.put_mat("gru.bh_prev", h_prev_blk);
        ws.put_mat("gru.bzh", zh_blk);
        ws.put_mat("gru.bzx_all", zx_all);
    }

    fn backward_batch_into(
        &self,
        batch: &SeqBatch,
        cache: &GruCache,
        grad_out: &Matrix,
        grads: &mut [Matrix],
        grad_inputs: &mut Matrix,
        ws: &mut Workspace,
    ) {
        let h = self.hidden;
        let total = batch.total_rows();
        assert_eq!(
            grad_out.shape(),
            (total, h),
            "GruCell::backward_batch_into: grad shape {:?} != {:?}",
            grad_out.shape(),
            (total, h)
        );
        let mut dzx_all = ws.take_mat("gru.bdzx_all", total, 3 * h);
        let mut dzh_all = ws.take_mat("gru.bdzh_all", total, 3 * h);
        let mut wht = ws.take_mat("gru.wht", 0, 0);
        self.wh.value.transpose_into(&mut wht);
        let mut dh_carry = ws.take_mat("gru.bdh_carry", 0, 0);
        let mut dh_prev_direct = ws.take_mat("gru.bdh_prev", 0, 0);
        let zero = ws.take_vec("batch.zero", h);
        let t_max = batch.t_max();
        for t in (0..t_max).rev() {
            let n_act = batch.active(t);
            let off = batch.offset(t);
            let carried = if t + 1 < t_max {
                batch.active(t + 1)
            } else {
                0
            };
            dh_prev_direct.resize_zeroed(n_act, h);
            for s in 0..n_act {
                let carry: &[f32] = if s < carried { dh_carry.row(s) } else { &zero };
                let gates = cache.gates.row(off + s);
                let hn = cache.hn.row(off + s);
                let h_prev: &[f32] = if t > 0 {
                    cache.hidden.row(batch.offset(t - 1) + s)
                } else {
                    &zero
                };
                let g_out = grad_out.row(off + s);
                let dz_x = dzx_all.row_mut(off + s);
                let dz_h = dzh_all.row_mut(off + s);
                let dh_direct = dh_prev_direct.row_mut(s);
                for j in 0..h {
                    let (z, r, n) = (gates[j], gates[h + j], gates[2 * h + j]);
                    let dh = g_out[j] + carry[j];
                    let dz_gate = dh * (h_prev[j] - n) * z * (1.0 - z);
                    let dn = dh * (1.0 - z) * (1.0 - n * n);
                    let dr = dn * hn[j] * r * (1.0 - r);
                    dz_x[j] = dz_gate;
                    dz_x[h + j] = dr;
                    dz_x[2 * h + j] = dn;
                    dz_h[j] = dz_gate;
                    dz_h[h + j] = dr;
                    dz_h[2 * h + j] = dn * r;
                    dh_direct[j] = dh * z;
                }
            }
            if t > 0 {
                dzh_all.matmul_window_into(off, n_act, &wht, &mut dh_carry);
                for s in 0..n_act {
                    etsb_tensor::add_assign(dh_carry.row_mut(s), dh_prev_direct.row(s));
                }
            }
        }
        accumulate_seq_grads(
            batch,
            &cache.inputs,
            &cache.hidden,
            &dzx_all,
            &dzh_all,
            grads,
            ws,
        );
        let mut wxt = ws.take_mat("gru.wxt", 0, 0);
        self.wx.value.transpose_into(&mut wxt);
        dzx_all.matmul_window_into(0, dzx_all.rows(), &wxt, grad_inputs);
        ws.put_mat("gru.wxt", wxt);
        ws.put_vec("batch.zero", zero);
        ws.put_mat("gru.bdh_prev", dh_prev_direct);
        ws.put_mat("gru.bdh_carry", dh_carry);
        ws.put_mat("gru.wht", wht);
        ws.put_mat("gru.bdzh_all", dzh_all);
        ws.put_mat("gru.bdzx_all", dzx_all);
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.wx, &self.wh, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_tensor::init::seeded_rng;

    #[test]
    fn forward_shapes_and_bounds() {
        let cell = GruCell::new(3, 5, &mut seeded_rng(1));
        let x = Matrix::from_fn(6, 3, |i, j| ((i + 2 * j) as f32 * 0.3).sin());
        let (out, cache) = cell.forward_seq(x);
        assert_eq!(out.shape(), (6, 5));
        // h is a convex combination of tanh outputs and prior state.
        assert!(out.as_slice().iter().all(|&v| v.abs() <= 1.0));
        assert_eq!(cache.gates.shape(), (6, 15));
    }

    #[test]
    fn state_propagates_across_steps() {
        let cell = GruCell::new(2, 4, &mut seeded_rng(2));
        let constant = Matrix::from_fn(3, 2, |_, _| 0.4);
        let (out, _) = cell.forward_seq(constant);
        assert_ne!(out.row(0), out.row(1));
    }

    /// Central-difference gradient check through the full GRU BPTT,
    /// including the reset-gate path.
    #[test]
    fn gradient_check() {
        let cell = GruCell::new(2, 3, &mut seeded_rng(3));
        let x = Matrix::from_fn(4, 2, |i, j| ((i * 2 + j) as f32 * 0.77).sin() * 0.6);

        let loss = |c: &GruCell, x: &Matrix| c.forward_seq(x.clone()).0.sum();

        let (out, cache) = cell.forward_seq(x.clone());
        let ones = Matrix::full(out.rows(), out.cols(), 1.0);
        let mut grads = crate::param::grad_buffer_for(&cell.params());
        let grad_in = cell.backward_seq(&cache, &ones, grads.slots_mut());

        let h = 1e-3_f32;
        for pi in 0..3 {
            let cols = cell.params()[pi].value.cols();
            for block in 0..3 {
                let coords = (0, block * (cols / 3) + 1);
                let analytic = grads.slot(pi)[coords];
                let mut plus = cell.clone();
                plus.params_mut()[pi].value[coords] += h;
                let mut minus = cell.clone();
                minus.params_mut()[pi].value[coords] -= h;
                let numeric = (loss(&plus, &x) - loss(&minus, &x)) / (2.0 * h);
                assert!(
                    (numeric - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
                    "param {pi} block {block}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
        let analytic = grad_in[(1, 0)];
        let mut xp = x.clone();
        xp[(1, 0)] += h;
        let mut xm = x.clone();
        xm[(1, 0)] -= h;
        let numeric = (loss(&cell, &xp) - loss(&cell, &xm)) / (2.0 * h);
        assert!(
            (numeric - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
            "input grad: numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn works_inside_stacked_birnn() {
        use crate::StackedBiRnn;
        let net: StackedBiRnn<GruCell> = StackedBiRnn::new(3, 4, &mut seeded_rng(4));
        let x = Matrix::from_fn(5, 3, |i, j| (i as f32 + j as f32) * 0.1);
        let (out, cache) = net.forward(x);
        assert_eq!(out.len(), 8);
        let mut grads = crate::param::grad_buffer_for(&net.params());
        let grad = net.backward(&cache, &[1.0; 8], grads.slots_mut());
        assert_eq!(grad.shape(), (5, 3));
    }
}
