//! Data-parallel helpers.
//!
//! Model inference in this workspace is read-only (layers carry no hidden
//! mutable state thanks to the cache-out convention), so evaluating a test
//! set parallelizes embarrassingly: shard the sample indices across
//! threads, run the shared model by reference, concatenate results in
//! order.

use crossbeam::channel;
use std::num::NonZeroUsize;

/// Number of worker threads to use: the available parallelism, capped so
/// tiny workloads do not pay spawn overhead.
pub fn worker_count(items: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    cores.min(items.max(1)).min(32)
}

/// Apply `f` to every index in `0..n` across threads, returning results in
/// index order. `f` must be `Sync` (it borrows the model immutably).
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = worker_count(n);
    if workers <= 1 || n < 64 {
        return (0..n).map(f).collect();
    }
    let (tx, rx) = channel::unbounded::<(usize, T)>();
    std::thread::scope(|scope| {
        let chunk = n.div_ceil(workers);
        for w in 0..workers {
            let tx = tx.clone();
            let f = &f;
            scope.spawn(move || {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(n);
                for i in start..end {
                    // The receiver outlives every sender inside the scope.
                    let _ = tx.send((i, f(i)));
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, v) in rx {
            slots[i] = Some(v);
        }
        slots
            .into_iter()
            .map(|s| s.expect("parallel_map: worker dropped an index"))
            .collect()
    })
}

/// Fold `f` over `0..n` across threads, merging per-thread accumulators
/// with `merge`. Used for sharded gradient accumulation.
pub fn parallel_fold<A, F, M>(n: usize, init: impl Fn() -> A + Sync, f: F, merge: M) -> A
where
    A: Send,
    F: Fn(&mut A, usize) + Sync,
    M: Fn(A, A) -> A,
{
    let workers = worker_count(n);
    if workers <= 1 || n < 64 {
        let mut acc = init();
        for i in 0..n {
            f(&mut acc, i);
        }
        return acc;
    }
    let accs = std::thread::scope(|scope| {
        let chunk = n.div_ceil(workers);
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                let init = &init;
                scope.spawn(move || {
                    let mut acc = init();
                    let start = w * chunk;
                    let end = ((w + 1) * chunk).min(n);
                    for i in start..end {
                        f(&mut acc, i);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_fold worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut iter = accs.into_iter();
    let first = iter.next().expect("at least one worker");
    iter.fold(first, merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out = parallel_map(1000, |i| i * 2);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn map_small_input_uses_serial_path() {
        assert_eq!(parallel_map(3, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn fold_sums_correctly() {
        let total = parallel_fold(10_000, || 0u64, |acc, i| *acc += i as u64, |a, b| a + b);
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1_000_000) <= 32);
    }
}
