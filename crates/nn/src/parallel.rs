//! Data-parallel helpers.
//!
//! Model inference and gradient accumulation in this workspace are safe to
//! shard: layers carry no hidden mutable state (cache-out convention) and
//! backward passes write into explicit [`etsb_tensor::GradBuffer`]s, so
//! threads share the model immutably and combine results afterwards.
//!
//! # Determinism contract
//!
//! [`parallel_map`] concatenates per-worker chunks in worker order, so its
//! output never depends on scheduling. [`parallel_fold`] goes further: the
//! item range is cut into a **fixed number of shards** ([`fold_shards`])
//! that depends only on the item count — never on the worker count — each
//! shard fills its own accumulator, and shard accumulators are merged in
//! shard-index order. The exact same float additions happen in the exact
//! same order whether the shards run on one thread or thirty-two, so
//! training results are bitwise-identical for a given seed regardless of
//! `ETSB_WORKERS` / core count.

use etsb_obs::registry::{self, LocalHistogram};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A duration in whole nanoseconds, saturating at `u64::MAX`.
fn saturating_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Fixed shard count cap for [`parallel_fold`]: enough slack for any
/// realistic core count while keeping per-shard merge cost trivial.
const MAX_FOLD_SHARDS: usize = 16;

/// Below this many items the helpers stay on the calling thread (the
/// fixed shard structure keeps results identical either way).
const SPAWN_THRESHOLD: usize = 64;

/// Process-wide worker-count override (0 = automatic). Takes precedence
/// over the `ETSB_WORKERS` environment variable.
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force a specific worker count for every subsequent parallel helper
/// call; `0` restores automatic selection. Intended for benchmarks and
/// determinism tests; results do not depend on this by construction.
pub fn set_worker_override(workers: usize) {
    WORKER_OVERRIDE.store(workers, Ordering::SeqCst);
}

/// Configured parallelism: the override if set, else the `ETSB_WORKERS`
/// environment variable if set to a positive integer, else the machine's
/// available parallelism.
fn configured_workers() -> usize {
    let forced = WORKER_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var("ETSB_WORKERS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Number of worker threads to use: the configured parallelism, capped so
/// tiny workloads do not pay spawn overhead.
pub fn worker_count(items: usize) -> usize {
    configured_workers().min(items.max(1)).min(32)
}

/// The resolved process-wide worker configuration (override, else
/// `ETSB_WORKERS`, else available parallelism) before per-call capping.
/// Recorded in run manifests so a sweep's parallelism is reproducible.
pub fn resolved_workers() -> usize {
    configured_workers()
}

/// Number of fold shards for `n` items: a pure function of `n` (never of
/// the worker count), so the shard boundaries — and therefore the float
/// summation order — are identical on every machine.
pub fn fold_shards(n: usize) -> usize {
    n.min(MAX_FOLD_SHARDS)
}

/// Apply `f` to every index in `0..n` across threads, returning results in
/// index order. `f` must be `Sync` (it borrows the model immutably).
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = worker_count(n);
    if workers <= 1 || n < SPAWN_THRESHOLD {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move || {
                    let start = w * chunk;
                    let end = ((w + 1) * chunk).min(n);
                    (start..end).map(f).collect::<Vec<T>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        // Chunks cover contiguous index ranges in worker order, so
        // concatenation restores index order exactly.
        for handle in handles {
            match handle.join() {
                Ok(chunk) => out.extend(chunk),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        out
    })
}

/// Like [`parallel_map`], but each worker thread carries a private scratch
/// state built by `init` (e.g. an [`etsb_tensor::Workspace`] plus reusable
/// layer caches), so per-item work can be allocation-free after its first
/// use. The state is created *inside* each worker, so it only needs to be
/// constructible, not `Send`. Results come back in index order; the state
/// never crosses items in observable ways as long as `f` treats it as
/// scratch (zero-on-acquire workspace buffers guarantee exactly that).
pub fn parallel_map_with<S, T, F>(n: usize, init: impl Fn() -> S + Sync, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = worker_count(n);
    if workers <= 1 || n < SPAWN_THRESHOLD {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                let init = &init;
                scope.spawn(move || {
                    let mut state = init();
                    let start = w * chunk;
                    let end = ((w + 1) * chunk).min(n);
                    (start..end).map(|i| f(&mut state, i)).collect::<Vec<T>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            match handle.join() {
                Ok(chunk) => out.extend(chunk),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        out
    })
}

/// Apply `f` to each deterministic fold shard of `0..n` — the **exact same
/// shard boundaries** as [`parallel_fold`] — returning per-shard results in
/// shard-index order. `f` receives the shard index and its item range;
/// trailing shards may receive an empty range (the boundaries are a pure
/// function of `n`), and their results still occupy their slot.
///
/// This is the batched-execution counterpart of [`parallel_fold`]: the
/// model hot path builds one packed sequence batch per shard, and because
/// shard composition depends only on the item count, the float-operation
/// order inside each batch — and the shard-order combination afterwards —
/// is identical for every worker count.
pub fn parallel_map_shards<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    let shards = fold_shards(n);
    if shards == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(shards);
    let workers = worker_count(shards);
    // Shard wall times are recorded into the global registry from the
    // coordinating thread in shard-index order (never from workers), so
    // the metrics hot path cannot perturb scheduling or float order.
    let timing = registry::metrics_enabled();
    let run_shard = |s: usize| {
        let start = (s * chunk).min(n);
        let end = ((s + 1) * chunk).min(n);
        if timing {
            let t0 = Instant::now();
            let out = f(s, start..end);
            (out, saturating_ns(t0.elapsed()))
        } else {
            (f(s, start..end), 0)
        }
    };
    let timed: Vec<(T, u64)> = if workers <= 1 || n < SPAWN_THRESHOLD {
        (0..shards).map(run_shard).collect()
    } else {
        let per_worker = shards.div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let run_shard = &run_shard;
                    scope.spawn(move || {
                        let start = w * per_worker;
                        let end = ((w + 1) * per_worker).min(shards);
                        (start..end).map(run_shard).collect::<Vec<(T, u64)>>()
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(shards);
            // Workers cover contiguous shard ranges in worker order, so
            // concatenation restores shard order exactly.
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            out
        })
    };
    if timing {
        let hist = registry::global().histogram("parallel_shard_ns");
        for (_, ns) in &timed {
            hist.record_ns(*ns);
        }
    }
    timed.into_iter().map(|(out, _)| out).collect()
}

/// Fold `f` over `0..n` with deterministic sharding: the range is cut into
/// [`fold_shards`]`(n)` fixed shards, each shard folds into its own fresh
/// accumulator from `init`, and shard accumulators are combined with
/// `merge` in shard-index order. Returns `init()` untouched when `n == 0`.
///
/// Used for sharded gradient accumulation: `merge` sees the exact same
/// operands in the exact same order for every worker count.
pub fn parallel_fold<A, F, M>(n: usize, init: impl Fn() -> A + Sync, f: F, merge: M) -> A
where
    A: Send,
    F: Fn(&mut A, usize) + Sync,
    M: Fn(&mut A, A),
{
    let shards = fold_shards(n);
    if shards == 0 {
        return init();
    }
    let chunk = n.div_ceil(shards);
    let workers = worker_count(shards);
    // Coordinating-thread instrumentation only: worker threads never touch
    // the span stack, so the trace stays deterministic and the fold's
    // float-summation order is untouched.
    let _fold_span = etsb_obs::obs_span!(
        "parallel_fold",
        "items" => n,
        "shards" => shards,
        "workers" => workers,
    );
    if etsb_obs::enabled() {
        for s in 0..shards {
            let count = ((s + 1) * chunk).min(n) - (s * chunk).min(n);
            etsb_obs::emit(
                "counter",
                vec![
                    ("name", etsb_obs::FieldValue::from("shard_items")),
                    ("shard", etsb_obs::FieldValue::from(s)),
                    ("value", etsb_obs::FieldValue::from(count)),
                ],
            );
        }
    }
    // Each shard accumulates per-item wall times into its own
    // non-atomic [`LocalHistogram`]; the coordinating thread merges
    // them into the global registry in shard-index order afterwards.
    // The integer accumulators make the merged totals order-independent
    // and the fixed order makes snapshots deterministic for a given
    // event stream; the model's float work is untouched either way.
    let timing = registry::metrics_enabled();
    let run_shard = |s: usize| {
        let mut acc = init();
        let mut local = timing.then(LocalHistogram::latency);
        let start = s * chunk;
        let end = ((s + 1) * chunk).min(n);
        for i in start..end {
            match &mut local {
                Some(hist) => {
                    let t0 = Instant::now();
                    f(&mut acc, i);
                    hist.record(saturating_ns(t0.elapsed()));
                }
                None => f(&mut acc, i),
            }
        }
        (acc, local)
    };
    let sharded: Vec<(A, Option<LocalHistogram>)> = if workers <= 1 || n < SPAWN_THRESHOLD {
        (0..shards).map(run_shard).collect()
    } else {
        let per_worker = shards.div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let run_shard = &run_shard;
                    scope.spawn(move || {
                        let start = w * per_worker;
                        let end = ((w + 1) * per_worker).min(shards);
                        (start..end)
                            .map(run_shard)
                            .collect::<Vec<(A, Option<LocalHistogram>)>>()
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(shards);
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            out
        })
    };
    if timing {
        let hist = registry::global().histogram("parallel_fold_item_ns");
        for (_, local) in &sharded {
            if let Some(local) = local {
                hist.merge_local(local);
            }
        }
    }
    let _merge_span = etsb_obs::span("merge");
    let mut iter = sharded.into_iter().map(|(acc, _)| acc);
    // shards >= 1 here, so the first accumulator always exists.
    let mut total = match iter.next() {
        Some(first) => first,
        None => init(),
    };
    for acc in iter {
        merge(&mut total, acc);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out = parallel_map(1000, |i| i * 2);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn map_small_input_uses_serial_path() {
        assert_eq!(parallel_map(3, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn map_with_preserves_order() {
        let out = parallel_map_with(
            1000,
            || 0u64,
            |calls, i| {
                *calls += 1;
                i * 3
            },
        );
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn map_with_reuses_state_within_a_worker() {
        // Below the spawn threshold the whole range shares one state.
        let out = parallel_map_with(
            50,
            || 0usize,
            |calls, _| {
                *calls += 1;
                *calls
            },
        );
        assert_eq!(out[49], 50);
    }

    #[test]
    fn map_shards_matches_fold_boundaries() {
        for n in [0usize, 5, 17, 64, 200] {
            let ranges = parallel_map_shards(n, |s, r| (s, r));
            assert_eq!(ranges.len(), fold_shards(n));
            let mut covered = Vec::new();
            for (i, (s, r)) in ranges.iter().enumerate() {
                assert_eq!(*s, i);
                if n > 0 {
                    let chunk = n.div_ceil(fold_shards(n));
                    assert_eq!(r.start, (i * chunk).min(n));
                    assert_eq!(r.end, ((i + 1) * chunk).min(n));
                }
                covered.extend(r.clone());
            }
            assert_eq!(covered, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_shards_is_worker_independent() {
        let run = || parallel_map_shards(200, |s, r| (s, r.start, r.end));
        set_worker_override(1);
        let serial = run();
        set_worker_override(4);
        let threaded = run();
        set_worker_override(0);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn fold_sums_correctly() {
        let total = parallel_fold(10_000, || 0u64, |acc, i| *acc += i as u64, |a, b| *a += b);
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn fold_empty_range_returns_init() {
        let total = parallel_fold(0, || 42u64, |_, _| {}, |a, b| *a += b);
        assert_eq!(total, 42);
    }

    #[test]
    fn fold_shard_structure_is_worker_independent() {
        // Merge order is observable through a non-commutative fold: collect
        // (shard-local) index lists and concatenate at merge time.
        let run = || {
            parallel_fold(
                200,
                Vec::<usize>::new,
                |acc, i| acc.push(i),
                |a, mut b| a.append(&mut b),
            )
        };
        set_worker_override(1);
        let serial = run();
        set_worker_override(4);
        let parallel = run();
        set_worker_override(0);
        assert_eq!(serial, parallel);
        assert_eq!(serial, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn fold_shards_depend_only_on_item_count() {
        assert_eq!(fold_shards(0), 0);
        assert_eq!(fold_shards(5), 5);
        assert_eq!(fold_shards(64), MAX_FOLD_SHARDS);
        assert_eq!(fold_shards(1_000_000), MAX_FOLD_SHARDS);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1_000_000) <= 32);
    }

    #[test]
    fn worker_override_forces_count() {
        set_worker_override(2);
        assert_eq!(worker_count(1_000_000), 2);
        set_worker_override(0);
        assert!(worker_count(1_000_000) >= 1);
    }
}
