//! Trainset selection (§4.2): Algorithms 1–3.
//!
//! All three return `n` distinct tuple ids whose cells the (simulated)
//! user labels. Only the dirty values are consulted — never `value_y` or
//! the labels — exactly as the paper stresses.

use crate::config::SamplerKind;
use etsb_table::CellFrame;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Dispatch a sampler by kind.
pub fn select(kind: SamplerKind, frame: &CellFrame, n: usize, seed: u64) -> Vec<usize> {
    match kind {
        SamplerKind::Random => random_set(frame, n, seed),
        SamplerKind::Raha => raha_set(frame, n, seed),
        SamplerKind::DiverSet => diver_set(frame, n, seed),
    }
}

/// Algorithm 1 (`RandomSet`): uniform sample of `n` distinct tuples.
pub fn random_set(frame: &CellFrame, n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<usize> = (0..frame.n_tuples()).collect();
    ids.shuffle(&mut rng);
    ids.truncate(n.min(frame.n_tuples()));
    ids
}

/// Algorithm 2 (`RahaSet`): delegate to the Raha baseline's
/// cluster-coverage sampler.
pub fn raha_set(frame: &CellFrame, n: usize, seed: u64) -> Vec<usize> {
    let detector = etsb_raha::RahaDetector::default();
    let model = detector.fit(frame);
    model.sample_tuples(n, seed)
}

/// Algorithm 3 (`DiverSet`): greedily pick the tuple with the most
/// attribute values not seen in previously selected tuples; break ties by
/// the number of empty values, then uniformly at random.
///
/// The paper's `concat` column (attribute ‖ value) defines "seen": after
/// choosing a tuple, every cell anywhere in the dataset sharing a concat
/// value with it is deleted from the working set, so later picks are
/// scored only on genuinely novel values.
pub fn diver_set(frame: &CellFrame, n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_tuples = frame.n_tuples();
    let n = n.min(n_tuples);
    let attrs = frame.attrs();

    // concat value → cells carrying it.
    let mut by_concat: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (idx, cell) in frame.cells().iter().enumerate() {
        by_concat.entry(cell.concat(attrs)).or_default().push(idx);
    }

    let mut removed = vec![false; frame.cells().len()];
    // Per-tuple live-cell count (#unseenAttr) and live-empty count (#empty).
    let mut unseen: Vec<usize> = vec![frame.n_attrs(); n_tuples];
    let mut empties: Vec<usize> = (0..n_tuples)
        .map(|t| frame.tuple(t).iter().filter(|c| c.empty).count())
        .collect();
    let mut chosen = vec![false; n_tuples];
    let mut id_train = Vec::with_capacity(n);

    for _ in 0..n {
        // Candidates: unchosen tuples that still have live cells; if the
        // working set ran dry, fall back to any unchosen tuple (the
        // paper's "chosen randomly" terminal case).
        let best = (0..n_tuples)
            .filter(|&t| !chosen[t] && unseen[t] > 0)
            .map(|t| (unseen[t], empties[t]))
            .max();
        let candidates: Vec<usize> = match best {
            Some((u, e)) => (0..n_tuples)
                .filter(|&t| !chosen[t] && unseen[t] == u && empties[t] == e)
                .collect(),
            None => (0..n_tuples).filter(|&t| !chosen[t]).collect(),
        };
        let pick = candidates[rng.gen_range(0..candidates.len())];
        chosen[pick] = true;
        id_train.push(pick);

        // Delete every cell sharing a concat value with the pick.
        for cell in frame.tuple(pick) {
            let key = cell.concat(attrs);
            if let Some(cells) = by_concat.remove(&key) {
                for idx in cells {
                    if !removed[idx] {
                        removed[idx] = true;
                        let c = &frame.cells()[idx];
                        unseen[c.tuple_id] -= 1;
                        if c.empty {
                            empties[c.tuple_id] -= 1;
                        }
                    }
                }
            }
        }
    }
    id_train
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_table::Table;

    fn frame_from_rows(rows: &[&[&str]]) -> CellFrame {
        let cols: Vec<String> = (0..rows[0].len()).map(|c| format!("c{c}")).collect();
        let mut d = Table::new(cols);
        for r in rows {
            d.push_row_strs(r);
        }
        CellFrame::merge(&d, &d).unwrap()
    }

    fn assert_valid_sample(sample: &[usize], n: usize, n_tuples: usize) {
        assert_eq!(sample.len(), n);
        let mut sorted = sample.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "sample must be duplicate-free");
        assert!(sorted.iter().all(|&t| t < n_tuples));
    }

    #[test]
    fn random_set_basic_invariants() {
        let frame = frame_from_rows(&[&["a"], &["b"], &["c"], &["d"], &["e"]]);
        let s = random_set(&frame, 3, 7);
        assert_valid_sample(&s, 3, 5);
        // Deterministic per seed.
        assert_eq!(s, random_set(&frame, 3, 7));
        assert_ne!(random_set(&frame, 3, 1), random_set(&frame, 3, 2));
    }

    #[test]
    fn diver_set_prefers_unseen_values() {
        // Tuple 0 and 1 are identical; tuple 2 is all-new. After picking
        // one of {0,1}, the other contributes zero unseen values, so the
        // second pick must be tuple 2.
        let frame = frame_from_rows(&[&["x", "y"], &["x", "y"], &["p", "q"]]);
        let s = diver_set(&frame, 2, 3);
        assert_valid_sample(&s, 2, 3);
        assert!(s.contains(&2), "the all-new tuple must be selected: {s:?}");
    }

    #[test]
    fn diver_set_breaks_ties_by_empty_count() {
        // All tuples have 2 unseen attrs; tuple 1 has an empty value and
        // must win the first pick.
        let frame = frame_from_rows(&[&["a", "b"], &["c", ""], &["e", "f"]]);
        let s = diver_set(&frame, 1, 5);
        assert_eq!(s, vec![1]);
    }

    #[test]
    fn diver_set_walks_the_paper_example() {
        // Figure 4's worked example: three tuples over three attributes.
        // Tuple 0: (e3, "", 1111) — has an empty value.
        // Tuples 1, 2: all-distinct values, no empties.
        let frame = frame_from_rows(&[
            &["e3", "", "1111"],
            &["a7", "x1", "2222"],
            &["b9", "y2", "3333"],
        ]);
        // i=1: all have #unseen=3; tuple 0 wins on #empty=1.
        // i=2: tuples 1 and 2 tie (3 unseen, 0 empty) → random.
        let s = diver_set(&frame, 2, 1);
        assert_eq!(s[0], 0, "first pick must be the tuple with the empty value");
        assert!(s[1] == 1 || s[1] == 2);
    }

    #[test]
    fn diver_set_handles_exhausted_working_set() {
        // Only two distinct tuples exist; asking for 4 must still return
        // 4 distinct ids via the random fallback.
        let frame = frame_from_rows(&[&["a"], &["a"], &["a"], &["a"], &["b"]]);
        let s = diver_set(&frame, 4, 9);
        assert_valid_sample(&s, 4, 5);
    }

    #[test]
    fn diver_set_is_deterministic_per_seed() {
        let rows: Vec<Vec<String>> = (0..50)
            .map(|i| vec![format!("v{}", i % 7), format!("w{}", i % 3)])
            .collect();
        let str_rows: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let refs: Vec<&[&str]> = str_rows.iter().map(|r| r.as_slice()).collect();
        let frame = frame_from_rows(&refs);
        assert_eq!(diver_set(&frame, 20, 5), diver_set(&frame, 20, 5));
    }

    #[test]
    fn all_samplers_dispatch() {
        let rows: Vec<Vec<String>> = (0..40).map(|i| vec![format!("v{i}")]).collect();
        let str_rows: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let refs: Vec<&[&str]> = str_rows.iter().map(|r| r.as_slice()).collect();
        let frame = frame_from_rows(&refs);
        for kind in [
            SamplerKind::Random,
            SamplerKind::Raha,
            SamplerKind::DiverSet,
        ] {
            let s = select(kind, &frame, 10, 1);
            assert_valid_sample(&s, 10, 40);
        }
    }

    #[test]
    fn request_larger_than_dataset_is_clamped() {
        let frame = frame_from_rows(&[&["a"], &["b"]]);
        assert_eq!(diver_set(&frame, 10, 1).len(), 2);
        assert_eq!(random_set(&frame, 10, 1).len(), 2);
    }
}
