//! TSB-RNN (§4.3.1): character embedding → two-stacked bidirectional RNN
//! (64 units/direction) → Dense(32, ReLU) → BatchNorm → Dense(2, softmax).

use super::{AnyStacked, AnyStackedCache, Head};
use crate::config::TrainConfig;
use crate::encode::EncodedDataset;
use etsb_nn::{parallel, softmax_cross_entropy, Embedding, EmbeddingCache, Param};
use etsb_tensor::{GradBuffer, Matrix, Workspace};
use rand::rngs::StdRng;

/// Worker-local scratch for the inference path: one bundle per worker
/// thread, recycled across the cells that worker scores.
struct PredictScratch {
    ws: Workspace,
    rnn_cache: AnyStackedCache,
    emb_cache: EmbeddingCache,
    embedded: Matrix,
}

/// The Two-Stacked Bidirectional RNN model.
#[derive(Debug)]
pub struct TsbRnn {
    embedding: Embedding,
    rnn: AnyStacked,
    head: Head,
}

impl TsbRnn {
    /// Build for a dataset's value dictionary.
    pub fn new(data: &EncodedDataset, cfg: &TrainConfig, rng: &mut StdRng) -> Self {
        let vocab = data.char_index.vocab_size();
        // §3.1: the embedding width defaults to the dictionary size.
        let embed_dim = cfg.embed_dim.unwrap_or(vocab);
        let rnn = AnyStacked::new(cfg.cell, embed_dim, cfg.rnn_units, rng);
        let feature_dim = rnn.output_dim();
        Self {
            embedding: Embedding::new(vocab, embed_dim, rng),
            rnn,
            head: Head::new(feature_dim, cfg.head_dim, rng),
        }
    }

    /// Encode one cell's character sequence into the RNN feature vector,
    /// borrowing scratch from the worker-local workspace. The returned
    /// caches are fresh (they must outlive the call for the backward
    /// pass); all intermediate sequence buffers are recycled.
    fn encode_one_into(
        &self,
        seq: &[usize],
        ws: &mut Workspace,
        embedded: &mut Matrix,
    ) -> (Vec<f32>, (EmbeddingCache, AnyStackedCache)) {
        let mut emb_cache = EmbeddingCache::default();
        self.embedding.forward_into(seq, embedded, &mut emb_cache);
        let mut rnn_cache = self.rnn.empty_cache();
        let mut feat = vec![0.0_f32; self.rnn.output_dim()];
        self.rnn
            .forward_into(embedded, &mut feat, &mut rnn_cache, ws);
        (feat, (emb_cache, rnn_cache))
    }

    /// Encode one cell for inference: the cache is worker-local and
    /// recycled, so a warmed worker allocates only the returned feature
    /// vector per cell.
    fn encode_features_into(&self, seq: &[usize], state: &mut PredictScratch) -> Vec<f32> {
        let PredictScratch {
            ws,
            rnn_cache,
            emb_cache,
            embedded,
        } = state;
        self.embedding.forward_into(seq, embedded, emb_cache);
        let mut feat = vec![0.0_f32; self.rnn.output_dim()];
        self.rnn.forward_into(embedded, &mut feat, rnn_cache, ws);
        feat
    }

    fn predict_scratch(&self) -> PredictScratch {
        PredictScratch {
            ws: Workspace::new(),
            rnn_cache: self.rnn.empty_cache(),
            emb_cache: EmbeddingCache::default(),
            embedded: Matrix::default(),
        }
    }

    /// One gradient-accumulating training step; returns the batch loss.
    ///
    /// `grads` has 19 slots in [`TsbRnn::params`] order: embedding (1),
    /// RNN (12), head (6). Per-sample forward/backward passes shard
    /// across threads; the batch-coupled head (BatchNorm statistics)
    /// stays on the merged feature matrix. Per-thread accumulators merge
    /// in a fixed shard order, so the result is bitwise-identical for any
    /// worker count.
    pub fn train_batch(
        &mut self,
        data: &EncodedDataset,
        batch: &[usize],
        grads: &mut GradBuffer,
    ) -> f32 {
        assert!(!batch.is_empty(), "TsbRnn::train_batch: empty batch");
        assert_eq!(grads.len(), 19, "TsbRnn::train_batch: gradient slot count");
        let feat_dim = self.rnn.output_dim();

        let forward_span = etsb_obs::obs_span!("forward", "samples" => batch.len());
        // Per-sample forward passes are independent: shard them, each
        // worker reusing one workspace + embedding buffer across its
        // samples (zero-on-acquire scratch keeps results identical to the
        // allocating path bit for bit).
        let encoded = parallel::parallel_map_with(
            batch.len(),
            || (Workspace::new(), Matrix::default()),
            |(ws, embedded), i| self.encode_one_into(&data.sequences[batch[i]], ws, embedded),
        );
        let mut features = Matrix::zeros(batch.len(), feat_dim);
        let mut caches = Vec::with_capacity(batch.len());
        for (row, (feat, cache)) in encoded.into_iter().enumerate() {
            features.row_mut(row).copy_from_slice(&feat);
            caches.push(cache);
        }

        let labels: Vec<usize> = batch.iter().map(|&c| usize::from(data.labels[c])).collect();
        let (logits, head_cache) = self.head.forward_train(features);
        let loss = softmax_cross_entropy(&logits, &labels);
        drop(forward_span);

        let _backward_span = etsb_obs::span("backward");
        let grad_features = self.head.backward(
            &head_cache,
            &loss.grad_logits,
            &mut grads.slots_mut()[13..19],
        );

        // Per-sample backward passes shard too, each shard accumulating
        // into its own buffer over the sequence-path slots (embedding +
        // RNN), merged deterministically in shard order. Each shard also
        // carries a workspace and a grad-input buffer so the per-sample
        // backward pass is allocation-free once warmed.
        let seq_shapes: Vec<(usize, usize)> = self.params()[..13]
            .iter()
            .map(|p| p.value.shape())
            .collect();
        let (seq_grads, _, _) = parallel::parallel_fold(
            batch.len(),
            || {
                (
                    GradBuffer::from_shapes(seq_shapes.iter().copied()),
                    Workspace::new(),
                    Matrix::default(),
                )
            },
            |(acc, ws, grad_embedded), i| {
                let (emb_slot, rnn_slots) = acc.slots_mut().split_at_mut(1);
                let (emb_cache, rnn_cache) = &caches[i];
                self.rnn.backward_into(
                    rnn_cache,
                    grad_features.row(i),
                    rnn_slots,
                    grad_embedded,
                    ws,
                );
                self.embedding
                    .backward(emb_cache, grad_embedded, &mut emb_slot[0]);
            },
            |a, b| a.0.merge(&b.0),
        );
        for (slot, merged) in grads.slots_mut()[..13].iter_mut().zip(seq_grads.slots()) {
            slot.add_assign(merged);
        }
        loss.loss
    }

    /// Error probabilities (evaluation mode), parallel across cells, each
    /// worker reusing one scratch bundle (workspace + caches) so a warmed
    /// worker allocates nothing per cell beyond its feature vector.
    pub fn predict_probs(&self, data: &EncodedDataset, cells: &[usize]) -> Vec<f32> {
        let feats: Vec<Vec<f32>> = parallel::parallel_map_with(
            cells.len(),
            || self.predict_scratch(),
            |scratch, i| self.encode_features_into(&data.sequences[cells[i]], scratch),
        );
        let feat_dim = self.rnn.output_dim();
        let mut features = Matrix::zeros(cells.len(), feat_dim);
        for (row, f) in feats.iter().enumerate() {
            features.row_mut(row).copy_from_slice(f);
        }
        let logits = self.head.forward_eval(&features);
        (0..cells.len())
            .map(|r| {
                let mut row = logits.row(r).to_vec();
                etsb_tensor::softmax_inplace(&mut row);
                row[1]
            })
            .collect()
    }

    /// Parameters: embedding, RNN (layer1 fwd/bwd, layer2 fwd/bwd), head.
    pub fn params(&self) -> Vec<&Param> {
        let mut p = vec![self.embedding.param()];
        p.extend(self.rnn.params());
        p.extend(self.head.params());
        p
    }

    /// Mutable parameters in the same order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let (e, r, h) = (&mut self.embedding, &mut self.rnn, &mut self.head);
        let mut p = vec![e.param_mut()];
        p.extend(r.params_mut());
        p.extend(h.params_mut());
        p
    }

    /// Non-trainable buffers (BatchNorm running statistics).
    pub fn buffers(&self) -> Vec<&Matrix> {
        self.head.buffers()
    }

    /// Mutable buffers in the same order.
    pub fn buffers_mut(&mut self) -> Vec<&mut Matrix> {
        self.head.buffers_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::marked_dataset;
    use etsb_tensor::init::seeded_rng;

    fn small_cfg() -> TrainConfig {
        TrainConfig {
            rnn_units: 6,
            head_dim: 6,
            ..Default::default()
        }
    }

    #[test]
    fn predict_probs_are_probabilities() {
        let data = marked_dataset(20);
        let model = TsbRnn::new(&data, &small_cfg(), &mut seeded_rng(1));
        let cells: Vec<usize> = (0..data.n_cells()).collect();
        let probs = model.predict_probs(&data, &cells);
        assert_eq!(probs.len(), data.n_cells());
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn train_batch_reduces_loss() {
        use etsb_nn::{grad_buffer_for, Optimizer, Rmsprop};
        let data = marked_dataset(30);
        let mut model = TsbRnn::new(&data, &small_cfg(), &mut seeded_rng(2));
        let batch: Vec<usize> = (0..data.n_cells()).collect();
        let mut opt = Rmsprop::new(3e-3);
        let mut grads = grad_buffer_for(&model.params());
        let first = model.train_batch(&data, &batch, &mut grads);
        let mut last = first;
        for _ in 0..60 {
            grads.zero();
            last = model.train_batch(&data, &batch, &mut grads);
            opt.step(&mut model.params_mut(), &grads);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn gradient_accumulates_across_calls() {
        let data = marked_dataset(12);
        let mut model = TsbRnn::new(&data, &small_cfg(), &mut seeded_rng(3));
        let mut grads = etsb_nn::grad_buffer_for(&model.params());
        let _ = model.train_batch(&data, &[0, 1], &mut grads);
        let g1 = grads.slot(0).frobenius_norm();
        let _ = model.train_batch(&data, &[0, 1], &mut grads);
        let g2 = grads.slot(0).frobenius_norm();
        assert!(g2 > g1, "gradients should accumulate: {g1} -> {g2}");
    }

    #[test]
    fn param_order_is_stable() {
        let data = marked_dataset(12);
        let mut model = TsbRnn::new(&data, &small_cfg(), &mut seeded_rng(4));
        let shapes_a: Vec<_> = model.params().iter().map(|p| p.value.shape()).collect();
        let shapes_b: Vec<_> = model.params_mut().iter().map(|p| p.value.shape()).collect();
        assert_eq!(shapes_a, shapes_b);
        // 1 embedding + 12 RNN + 6 head (dense w/b, bn γ/β, out w/b).
        assert_eq!(shapes_a.len(), 19);
    }
}
