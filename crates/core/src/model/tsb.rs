//! TSB-RNN (§4.3.1): character embedding → two-stacked bidirectional RNN
//! (64 units/direction) → Dense(32, ReLU) → BatchNorm → Dense(2, softmax).
//!
//! Sequence execution is batch-major: each deterministic fold shard of a
//! training batch (or prediction set) is packed into one length-bucketed
//! [`SeqBatch`] and the whole shard runs through the batched RNN kernels
//! at once. Shard boundaries are a pure function of the item count, so
//! batch composition — and therefore every float operation — is identical
//! for any worker count, and the batched kernels themselves are bitwise
//! identical to the per-sample workspace path (pinned by the tests below).

use super::{AnyStacked, AnyStackedCache, Head};
use crate::config::TrainConfig;
use crate::encode::EncodedDataset;
use etsb_nn::{parallel, softmax_cross_entropy, Embedding, Param, SeqBatch};
use etsb_tensor::{GradBuffer, KernelPolicy, Matrix, Workspace};
use rand::rngs::StdRng;

/// One shard of a batch, encoded batch-major: the packed layout, the
/// layer cache (packed-row semantics, holding everything backward needs),
/// and the per-sample feature rows in shard-local original order.
struct ShardEnc {
    /// `None` for an empty trailing shard (the layout requires >= 1 sample).
    sb: Option<SeqBatch>,
    cache: AnyStackedCache,
    feats: Matrix,
}

/// The Two-Stacked Bidirectional RNN model.
#[derive(Debug)]
pub struct TsbRnn {
    embedding: Embedding,
    rnn: AnyStacked,
    head: Head,
}

impl TsbRnn {
    /// Build for a dataset's value dictionary.
    pub fn new(data: &EncodedDataset, cfg: &TrainConfig, rng: &mut StdRng) -> Self {
        let vocab = data.char_index.vocab_size();
        // §3.1: the embedding width defaults to the dictionary size.
        let embed_dim = cfg.embed_dim.unwrap_or(vocab);
        let rnn = AnyStacked::new(cfg.cell, embed_dim, cfg.rnn_units, rng);
        let feature_dim = rnn.output_dim();
        Self {
            embedding: Embedding::new(vocab, embed_dim, rng),
            rnn,
            head: Head::new(feature_dim, cfg.head_dim, rng),
        }
    }

    /// Per-sample reference encoder: kept for the bitwise-equivalence
    /// tests, which compare the batched shard path against this exact
    /// sequence of per-sample workspace calls.
    #[cfg(test)]
    fn encode_one_into(
        &self,
        seq: &[usize],
        ws: &mut Workspace,
        embedded: &mut Matrix,
    ) -> (Vec<f32>, (etsb_nn::EmbeddingCache, AnyStackedCache)) {
        let mut emb_cache = etsb_nn::EmbeddingCache::default();
        self.embedding.forward_into(seq, embedded, &mut emb_cache);
        let mut rnn_cache = self.rnn.empty_cache();
        let mut feat = vec![0.0_f32; self.rnn.output_dim()];
        self.rnn
            .forward_into(embedded, &mut feat, &mut rnn_cache, ws);
        (feat, (emb_cache, rnn_cache))
    }

    /// Encode one shard of cells batch-major: pack the character
    /// embeddings timestep-major and run the stacked RNN batched. The
    /// returned cache retains the packed activations for the backward
    /// pass; `feats` row `r` is the feature vector of `cells[r]`.
    fn encode_shard(
        &self,
        data: &EncodedDataset,
        cells: &[usize],
        policy: KernelPolicy,
    ) -> ShardEnc {
        let mut cache = self.rnn.empty_cache();
        let mut feats = Matrix::default();
        let sb = if cells.is_empty() {
            None
        } else {
            let lengths: Vec<usize> = cells.iter().map(|&c| data.sequences[c].len()).collect();
            // Clamped: a hand-built dataset may carry zero-length
            // sequences (the normal encoder emits at least one pad step);
            // they occupy one pad timestep, exactly as if encoded as "".
            let sb = SeqBatch::from_lengths_clamped(&lengths);
            let seqs: Vec<&[usize]> = cells
                .iter()
                .map(|&c| data.sequences[c].as_slice())
                .collect();
            let mut ws = Workspace::new();
            let mut packed = Matrix::default();
            self.embedding.lookup_batch_into(&sb, &seqs, &mut packed);
            self.rnn
                .forward_batch_into(&packed, &sb, &mut feats, &mut cache, &mut ws, policy);
            Some(sb)
        };
        ShardEnc { sb, cache, feats }
    }

    /// One gradient-accumulating training step; returns the batch loss.
    ///
    /// `grads` has 19 slots in [`TsbRnn::params`] order: embedding (1),
    /// RNN (12), head (6). The sequence path runs batch-major: one packed
    /// [`SeqBatch`] per deterministic fold shard, forward and backward,
    /// with per-shard gradient buffers merged in fixed shard order. The
    /// batch-coupled head (BatchNorm statistics) stays on the merged
    /// feature matrix. Results are bitwise identical to the per-sample
    /// workspace path for any worker count.
    pub fn train_batch(
        &mut self,
        data: &EncodedDataset,
        batch: &[usize],
        grads: &mut GradBuffer,
    ) -> f32 {
        assert!(!batch.is_empty(), "TsbRnn::train_batch: empty batch");
        assert_eq!(grads.len(), 19, "TsbRnn::train_batch: gradient slot count");
        let feat_dim = self.rnn.output_dim();

        let forward_span = etsb_obs::obs_span!("forward", "samples" => batch.len());
        let encs = parallel::parallel_map_shards(batch.len(), |_, range| {
            self.encode_shard(data, &batch[range], KernelPolicy::Exact)
        });
        let mut features = Matrix::zeros(batch.len(), feat_dim);
        let mut row = 0usize;
        for enc in &encs {
            for r in 0..enc.feats.rows() {
                features.row_mut(row).copy_from_slice(enc.feats.row(r));
                row += 1;
            }
        }
        if etsb_obs::enabled() {
            let (rows, steps) = encs
                .iter()
                .filter_map(|e| e.sb.as_ref())
                .fold((0usize, 0usize), |(rows, steps), sb| {
                    (rows + sb.total_rows(), steps + sb.t_max())
                });
            if steps > 0 {
                etsb_obs::gauge("batch_occupancy", rows as f64 / steps as f64);
            }
        }

        let labels: Vec<usize> = batch.iter().map(|&c| usize::from(data.labels[c])).collect();
        let (logits, head_cache) = self.head.forward_train(features);
        let loss = softmax_cross_entropy(&logits, &labels);
        drop(forward_span);

        let _backward_span = etsb_obs::span("backward");
        let grad_features = self.head.backward(
            &head_cache,
            &loss.grad_logits,
            &mut grads.slots_mut()[13..19],
        );

        // Batched backward, one shard per packed batch, each shard
        // accumulating into its own buffer over the sequence-path slots
        // (embedding + RNN). The batched kernels replay weight gradients
        // per sample in shard order, and shard buffers merge in fixed
        // shard order (empty trailing shards contribute zeroed buffers,
        // exactly like the per-sample fold), so the result is bitwise
        // identical to per-sample backward for any worker count.
        let seq_shapes: Vec<(usize, usize)> = self.params()[..13]
            .iter()
            .map(|p| p.value.shape())
            .collect();
        let shard_grads = parallel::parallel_map_shards(batch.len(), |s, range| {
            let mut acc = GradBuffer::from_shapes(seq_shapes.iter().copied());
            let mut ws_bytes = 0usize;
            if let Some(sb) = &encs[s].sb {
                let mut ws = Workspace::new();
                let mut gf = Matrix::zeros(range.len(), feat_dim);
                for (r, orig) in range.clone().enumerate() {
                    gf.row_mut(r).copy_from_slice(grad_features.row(orig));
                }
                let mut grad_packed = Matrix::default();
                let (emb_slot, rnn_slots) = acc.slots_mut().split_at_mut(1);
                self.rnn.backward_batch_into(
                    sb,
                    &encs[s].cache,
                    &gf,
                    rnn_slots,
                    &mut grad_packed,
                    &mut ws,
                );
                let seqs: Vec<&[usize]> = batch[range]
                    .iter()
                    .map(|&c| data.sequences[c].as_slice())
                    .collect();
                self.embedding
                    .backward_batch(sb, &seqs, &grad_packed, &mut emb_slot[0]);
                ws_bytes = ws.pooled_bytes();
            }
            (acc, ws_bytes)
        });
        if etsb_obs::enabled() {
            let bytes: usize = shard_grads.iter().map(|(_, b)| b).sum();
            etsb_obs::gauge("workspace_bytes", bytes as f64);
        }
        let mut iter = shard_grads.into_iter().map(|(acc, _)| acc);
        if let Some(mut total) = iter.next() {
            for b in iter {
                total.merge(&b);
            }
            for (slot, merged) in grads.slots_mut()[..13].iter_mut().zip(total.slots()) {
                slot.add_assign(merged);
            }
        }
        loss.loss
    }

    /// Error probabilities (evaluation mode), batch-major: each fold shard
    /// of the requested cells packs into one [`SeqBatch`] and runs the
    /// batched forward, so inference shares the training hot path.
    pub fn predict_probs(&self, data: &EncodedDataset, cells: &[usize]) -> Vec<f32> {
        self.predict_probs_with(data, cells, KernelPolicy::Exact)
    }

    /// [`TsbRnn::predict_probs`] under an explicit [`KernelPolicy`]:
    /// `Exact` keeps the bitwise contract, `FastMath` runs the batched
    /// sequence encoder on the fused inference kernels.
    pub fn predict_probs_with(
        &self,
        data: &EncodedDataset,
        cells: &[usize],
        policy: KernelPolicy,
    ) -> Vec<f32> {
        if cells.is_empty() {
            // Zero cells means zero forward passes: never reach the
            // batch-packing or head kernels with an empty matrix.
            return Vec::new();
        }
        let feat_dim = self.rnn.output_dim();
        let encs = parallel::parallel_map_shards(cells.len(), |_, range| {
            self.encode_shard(data, &cells[range], policy)
        });
        let mut features = Matrix::zeros(cells.len(), feat_dim);
        let mut row = 0usize;
        for enc in &encs {
            for r in 0..enc.feats.rows() {
                features.row_mut(row).copy_from_slice(enc.feats.row(r));
                row += 1;
            }
        }
        let logits = self.head.forward_eval(&features);
        (0..cells.len())
            .map(|r| {
                let mut row = logits.row(r).to_vec();
                etsb_tensor::softmax_inplace(&mut row);
                row[1]
            })
            .collect()
    }

    /// Parameters: embedding, RNN (layer1 fwd/bwd, layer2 fwd/bwd), head.
    pub fn params(&self) -> Vec<&Param> {
        let mut p = vec![self.embedding.param()];
        p.extend(self.rnn.params());
        p.extend(self.head.params());
        p
    }

    /// Mutable parameters in the same order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let (e, r, h) = (&mut self.embedding, &mut self.rnn, &mut self.head);
        let mut p = vec![e.param_mut()];
        p.extend(r.params_mut());
        p.extend(h.params_mut());
        p
    }

    /// Non-trainable buffers (BatchNorm running statistics).
    pub fn buffers(&self) -> Vec<&Matrix> {
        self.head.buffers()
    }

    /// Mutable buffers in the same order.
    pub fn buffers_mut(&mut self) -> Vec<&mut Matrix> {
        self.head.buffers_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::marked_dataset;
    use etsb_tensor::init::seeded_rng;

    fn small_cfg() -> TrainConfig {
        TrainConfig {
            rnn_units: 6,
            head_dim: 6,
            ..Default::default()
        }
    }

    /// The pre-batching training step, reproduced exactly: per-sample
    /// forward/backward workspace calls, sharded with [`parallel::fold_shards`]
    /// boundaries and merged in shard order. The batched `train_batch`
    /// must match this bit for bit.
    // The index drives `caches`, `grad_features` rows and the shard
    // arithmetic together; an iterator chain would obscure the replayed order.
    #[allow(clippy::needless_range_loop)]
    fn reference_train_batch(
        model: &mut TsbRnn,
        data: &EncodedDataset,
        batch: &[usize],
        grads: &mut GradBuffer,
    ) -> f32 {
        let feat_dim = model.rnn.output_dim();
        let mut ws = Workspace::new();
        let mut embedded = Matrix::default();
        let mut features = Matrix::zeros(batch.len(), feat_dim);
        let mut caches = Vec::with_capacity(batch.len());
        for (row, &cell) in batch.iter().enumerate() {
            let (feat, cache) =
                model.encode_one_into(&data.sequences[cell], &mut ws, &mut embedded);
            features.row_mut(row).copy_from_slice(&feat);
            caches.push(cache);
        }
        let labels: Vec<usize> = batch.iter().map(|&c| usize::from(data.labels[c])).collect();
        let (logits, head_cache) = model.head.forward_train(features);
        let loss = softmax_cross_entropy(&logits, &labels);
        let grad_features = model.head.backward(
            &head_cache,
            &loss.grad_logits,
            &mut grads.slots_mut()[13..19],
        );
        let shards = parallel::fold_shards(batch.len());
        let chunk = batch.len().div_ceil(shards);
        let seq_shapes: Vec<(usize, usize)> = model.params()[..13]
            .iter()
            .map(|p| p.value.shape())
            .collect();
        let mut bufs = Vec::new();
        for s in 0..shards {
            let mut acc = GradBuffer::from_shapes(seq_shapes.iter().copied());
            let mut ws = Workspace::new();
            let mut grad_embedded = Matrix::default();
            for i in (s * chunk).min(batch.len())..((s + 1) * chunk).min(batch.len()) {
                let (emb_slot, rnn_slots) = acc.slots_mut().split_at_mut(1);
                let (emb_cache, rnn_cache) = &caches[i];
                model.rnn.backward_into(
                    rnn_cache,
                    grad_features.row(i),
                    rnn_slots,
                    &mut grad_embedded,
                    &mut ws,
                );
                model
                    .embedding
                    .backward(emb_cache, &grad_embedded, &mut emb_slot[0]);
            }
            bufs.push(acc);
        }
        let mut iter = bufs.into_iter();
        // At least one shard exists for a non-empty batch.
        if let Some(mut total) = iter.next() {
            for b in iter {
                total.merge(&b);
            }
            for (slot, merged) in grads.slots_mut()[..13].iter_mut().zip(total.slots()) {
                slot.add_assign(merged);
            }
        }
        loss.loss
    }

    /// The tentpole guarantee: the batched shard path produces the exact
    /// same loss, gradients, and subsequent predictions as the per-sample
    /// workspace path, on a batch with thoroughly mixed lengths.
    #[test]
    fn batched_train_matches_per_sample_reference_bitwise() {
        let data = marked_dataset(30);
        let batch: Vec<usize> = (0..data.n_cells()).collect();
        let mut batched = TsbRnn::new(&data, &small_cfg(), &mut seeded_rng(5));
        let mut reference = TsbRnn::new(&data, &small_cfg(), &mut seeded_rng(5));

        let mut grads_b = etsb_nn::grad_buffer_for(&batched.params());
        let mut grads_r = etsb_nn::grad_buffer_for(&reference.params());
        let loss_b = batched.train_batch(&data, &batch, &mut grads_b);
        let loss_r = reference_train_batch(&mut reference, &data, &batch, &mut grads_r);
        assert_eq!(loss_b.to_bits(), loss_r.to_bits(), "loss diverged");
        for i in 0..grads_b.len() {
            assert_eq!(
                grads_b.slot(i).as_slice(),
                grads_r.slot(i).as_slice(),
                "gradient slot {i} diverged"
            );
        }
        // Predictions after one optimizer-free step must agree too (the
        // BatchNorm running statistics advanced identically).
        let probs_b = batched.predict_probs(&data, &batch);
        let probs_r = reference.predict_probs(&data, &batch);
        assert_eq!(probs_b, probs_r);
    }

    #[test]
    fn predict_probs_are_probabilities() {
        let data = marked_dataset(20);
        let model = TsbRnn::new(&data, &small_cfg(), &mut seeded_rng(1));
        let cells: Vec<usize> = (0..data.n_cells()).collect();
        let probs = model.predict_probs(&data, &cells);
        assert_eq!(probs.len(), data.n_cells());
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn train_batch_reduces_loss() {
        use etsb_nn::{grad_buffer_for, Optimizer, Rmsprop};
        let data = marked_dataset(30);
        let mut model = TsbRnn::new(&data, &small_cfg(), &mut seeded_rng(2));
        let batch: Vec<usize> = (0..data.n_cells()).collect();
        let mut opt = Rmsprop::new(3e-3);
        let mut grads = grad_buffer_for(&model.params());
        let first = model.train_batch(&data, &batch, &mut grads);
        let mut last = first;
        for _ in 0..60 {
            grads.zero();
            last = model.train_batch(&data, &batch, &mut grads);
            opt.step(&mut model.params_mut(), &grads);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn gradient_accumulates_across_calls() {
        let data = marked_dataset(12);
        let mut model = TsbRnn::new(&data, &small_cfg(), &mut seeded_rng(3));
        let mut grads = etsb_nn::grad_buffer_for(&model.params());
        let _ = model.train_batch(&data, &[0, 1], &mut grads);
        let g1 = grads.slot(0).frobenius_norm();
        let _ = model.train_batch(&data, &[0, 1], &mut grads);
        let g2 = grads.slot(0).frobenius_norm();
        assert!(g2 > g1, "gradients should accumulate: {g1} -> {g2}");
    }

    #[test]
    fn param_order_is_stable() {
        let data = marked_dataset(12);
        let mut model = TsbRnn::new(&data, &small_cfg(), &mut seeded_rng(4));
        let shapes_a: Vec<_> = model.params().iter().map(|p| p.value.shape()).collect();
        let shapes_b: Vec<_> = model.params_mut().iter().map(|p| p.value.shape()).collect();
        assert_eq!(shapes_a, shapes_b);
        // 1 embedding + 12 RNN + 6 head (dense w/b, bn γ/β, out w/b).
        assert_eq!(shapes_a.len(), 19);
    }
}
