//! ETSB-RNN (§4.3.2): the enriched architecture. Three input paths are
//! concatenated before the shared head:
//!
//! 1. characters → embedding → two-stacked BiRNN (64 units/direction),
//! 2. attribute id → embedding → two-stacked BiRNN (8 units/direction),
//! 3. `length_norm` scalar → Dense(64, ReLU).
//!
//! Both recurrent paths run batch-major (see [`SeqBatch`] and the module
//! docs on [`super::tsb`]): each deterministic fold shard packs its cells
//! into one length-bucketed batch per path — the attribute path is a
//! rectangular batch of length-1 sequences — so the whole shard moves
//! through the batched kernels at once, bitwise identical to the
//! per-sample workspace path.

use super::{AnyStacked, AnyStackedCache, Head};
use crate::config::TrainConfig;
use crate::encode::EncodedDataset;
use etsb_nn::{parallel, softmax_cross_entropy, Activation, Dense, Embedding, Param, SeqBatch};
use etsb_tensor::{GradBuffer, KernelPolicy, Matrix, Workspace};
use rand::rngs::StdRng;

/// A per-path forward cache: embedding lookup + recurrent stack (the
/// per-sample reference path, kept for the bitwise-equivalence tests).
#[cfg(test)]
type PathCache = (etsb_nn::EmbeddingCache, AnyStackedCache);

/// One shard of a batch, encoded batch-major on both recurrent paths.
struct ShardEnc {
    /// Character-path packed layout; `None` for an empty trailing shard.
    sb: Option<SeqBatch>,
    /// Attribute-path packed layout (rectangular: every cell contributes
    /// one length-1 sequence of its attribute id).
    attr_sb: Option<SeqBatch>,
    cache: AnyStackedCache,
    attr_cache: AnyStackedCache,
    /// `n_shard x char_dim`, shard-local original order.
    feats: Matrix,
    /// `n_shard x attr_dim`, shard-local original order.
    attr_feats: Matrix,
}

/// The Enriched Two-Stacked Bidirectional RNN model.
#[derive(Debug)]
pub struct EtsbRnn {
    embedding: Embedding,
    rnn: AnyStacked,
    attr_embedding: Embedding,
    attr_rnn: AnyStacked,
    len_dense: Dense,
    head: Head,
    char_dim: usize,
    attr_dim: usize,
    len_dim: usize,
}

impl EtsbRnn {
    /// Build for a dataset's value and attribute dictionaries.
    pub fn new(data: &EncodedDataset, cfg: &TrainConfig, rng: &mut StdRng) -> Self {
        let vocab = data.char_index.vocab_size();
        let embed_dim = cfg.embed_dim.unwrap_or(vocab);
        let n_attrs = data.attr_index.len().max(1);
        // The attribute dictionary plays the role of the value dictionary
        // for the metadata path: its embedding width defaults to its size.
        let attr_embed_dim = n_attrs;
        let rnn = AnyStacked::new(cfg.cell, embed_dim, cfg.rnn_units, rng);
        let attr_rnn = AnyStacked::new(cfg.cell, attr_embed_dim, cfg.attr_rnn_units, rng);
        let (char_dim, attr_dim, len_dim) = (
            rnn.output_dim(),
            attr_rnn.output_dim(),
            cfg.length_dense_dim,
        );
        Self {
            embedding: Embedding::new(vocab, embed_dim, rng),
            rnn,
            attr_embedding: Embedding::new(n_attrs, attr_embed_dim, rng),
            attr_rnn,
            len_dense: Dense::new(1, len_dim, Activation::Relu, rng),
            head: Head::new(char_dim + attr_dim + len_dim, cfg.head_dim, rng),
            char_dim,
            attr_dim,
            len_dim,
        }
    }

    /// Concatenated feature width.
    fn feature_dim(&self) -> usize {
        self.char_dim + self.attr_dim + self.len_dim
    }

    /// Per-sample reference encoder for the bitwise-equivalence tests:
    /// character + attribute features for one cell through the per-sample
    /// workspace path.
    #[cfg(test)]
    fn encode_seq_paths_into(
        &self,
        seq: &[usize],
        attr: usize,
        ws: &mut Workspace,
        embedded: &mut Matrix,
        attr_embedded: &mut Matrix,
    ) -> (Vec<f32>, Vec<f32>, PathCache, PathCache) {
        let mut emb_cache = etsb_nn::EmbeddingCache::default();
        self.embedding.forward_into(seq, embedded, &mut emb_cache);
        let mut rnn_cache = self.rnn.empty_cache();
        let mut char_feat = vec![0.0_f32; self.char_dim];
        self.rnn
            .forward_into(embedded, &mut char_feat, &mut rnn_cache, ws);
        let mut attr_emb_cache = etsb_nn::EmbeddingCache::default();
        self.attr_embedding
            .forward_into(&[attr], attr_embedded, &mut attr_emb_cache);
        let mut attr_rnn_cache = self.attr_rnn.empty_cache();
        let mut attr_feat = vec![0.0_f32; self.attr_dim];
        self.attr_rnn
            .forward_into(attr_embedded, &mut attr_feat, &mut attr_rnn_cache, ws);
        (
            char_feat,
            attr_feat,
            (emb_cache, rnn_cache),
            (attr_emb_cache, attr_rnn_cache),
        )
    }

    /// Encode one shard of cells batch-major on both recurrent paths.
    /// The returned caches retain the packed activations for the backward
    /// pass; feature row `r` belongs to `cells[r]`.
    fn encode_shard(
        &self,
        data: &EncodedDataset,
        cells: &[usize],
        policy: KernelPolicy,
    ) -> ShardEnc {
        let mut cache = self.rnn.empty_cache();
        let mut attr_cache = self.attr_rnn.empty_cache();
        let mut feats = Matrix::default();
        let mut attr_feats = Matrix::default();
        let (sb, attr_sb) = if cells.is_empty() {
            (None, None)
        } else {
            let mut ws = Workspace::new();
            let mut packed = Matrix::default();
            let lengths: Vec<usize> = cells.iter().map(|&c| data.sequences[c].len()).collect();
            // Clamped: a hand-built dataset may carry zero-length
            // sequences (the normal encoder emits at least one pad step);
            // they occupy one pad timestep, exactly as if encoded as "".
            let sb = SeqBatch::from_lengths_clamped(&lengths);
            let seqs: Vec<&[usize]> = cells
                .iter()
                .map(|&c| data.sequences[c].as_slice())
                .collect();
            self.embedding.lookup_batch_into(&sb, &seqs, &mut packed);
            self.rnn
                .forward_batch_into(&packed, &sb, &mut feats, &mut cache, &mut ws, policy);
            let attr_sb = SeqBatch::from_lengths(&vec![1; cells.len()]);
            let attr_store: Vec<[usize; 1]> = cells.iter().map(|&c| [data.attr_ids[c]]).collect();
            let attr_seqs: Vec<&[usize]> = attr_store.iter().map(|a| a.as_slice()).collect();
            self.attr_embedding
                .lookup_batch_into(&attr_sb, &attr_seqs, &mut packed);
            self.attr_rnn.forward_batch_into(
                &packed,
                &attr_sb,
                &mut attr_feats,
                &mut attr_cache,
                &mut ws,
                policy,
            );
            (Some(sb), Some(attr_sb))
        };
        ShardEnc {
            sb,
            attr_sb,
            cache,
            attr_cache,
            feats,
            attr_feats,
        }
    }

    /// One gradient-accumulating training step; returns the batch loss.
    ///
    /// `grads` has 34 slots in [`EtsbRnn::params`] order: char path
    /// (1 + 12), attribute path (1 + 12), length dense (2), head (6).
    /// Both recurrent paths run batch-major, one packed batch per
    /// deterministic fold shard; the batch-coupled length dense and head
    /// stay on merged batch matrices. Per-shard gradient buffers merge in
    /// fixed shard order, so the result is bitwise identical to the
    /// per-sample workspace path for any worker count.
    pub fn train_batch(
        &mut self,
        data: &EncodedDataset,
        batch: &[usize],
        grads: &mut GradBuffer,
    ) -> f32 {
        assert!(!batch.is_empty(), "EtsbRnn::train_batch: empty batch");
        assert_eq!(grads.len(), 34, "EtsbRnn::train_batch: gradient slot count");
        let n = batch.len();
        let forward_span = etsb_obs::obs_span!("forward", "samples" => n);
        let mut features = Matrix::zeros(n, self.feature_dim());

        // Length path (batched dense).
        let len_inputs = Matrix::from_fn(n, 1, |r, _| data.length_norms[batch[r]]);
        let (len_feats, len_cache) = self.len_dense.forward(len_inputs);

        // Both sequence paths, batch-major per shard.
        let encs = parallel::parallel_map_shards(n, |_, range| {
            self.encode_shard(data, &batch[range], KernelPolicy::Exact)
        });
        let mut row = 0usize;
        for enc in &encs {
            for r in 0..enc.feats.rows() {
                let out = features.row_mut(row);
                out[..self.char_dim].copy_from_slice(enc.feats.row(r));
                out[self.char_dim..self.char_dim + self.attr_dim]
                    .copy_from_slice(enc.attr_feats.row(r));
                out[self.char_dim + self.attr_dim..].copy_from_slice(len_feats.row(row));
                row += 1;
            }
        }
        if etsb_obs::enabled() {
            let (rows, steps) = encs
                .iter()
                .filter_map(|e| e.sb.as_ref())
                .fold((0usize, 0usize), |(rows, steps), sb| {
                    (rows + sb.total_rows(), steps + sb.t_max())
                });
            if steps > 0 {
                etsb_obs::gauge("batch_occupancy", rows as f64 / steps as f64);
            }
        }

        let labels: Vec<usize> = batch.iter().map(|&c| usize::from(data.labels[c])).collect();
        let (logits, head_cache) = self.head.forward_train(features);
        let loss = softmax_cross_entropy(&logits, &labels);
        drop(forward_span);

        let _backward_span = etsb_obs::span("backward");
        let grad_features = self.head.backward(
            &head_cache,
            &loss.grad_logits,
            &mut grads.slots_mut()[28..34],
        );

        // Batched sequence-path backward, one shard per packed batch;
        // shard buffers over slots 0..26 (char path then attribute path)
        // merge in fixed shard order, empty trailing shards contributing
        // zeroed buffers exactly like the per-sample fold.
        let seq_shapes: Vec<(usize, usize)> = self.params()[..26]
            .iter()
            .map(|p| p.value.shape())
            .collect();
        let (char_dim, attr_dim) = (self.char_dim, self.attr_dim);
        let shard_grads = parallel::parallel_map_shards(n, |s, range| {
            let mut acc = GradBuffer::from_shapes(seq_shapes.iter().copied());
            let mut ws_bytes = 0usize;
            if let (Some(sb), Some(attr_sb)) = (&encs[s].sb, &encs[s].attr_sb) {
                let mut ws = Workspace::new();
                let m = range.len();
                let mut gf = Matrix::zeros(m, char_dim);
                let mut attr_gf = Matrix::zeros(m, attr_dim);
                for (r, orig) in range.clone().enumerate() {
                    let g = grad_features.row(orig);
                    gf.row_mut(r).copy_from_slice(&g[..char_dim]);
                    attr_gf
                        .row_mut(r)
                        .copy_from_slice(&g[char_dim..char_dim + attr_dim]);
                }
                let (char_part, attr_part) = acc.slots_mut().split_at_mut(13);
                let (emb_slot, rnn_slots) = char_part.split_at_mut(1);
                let (attr_emb_slot, attr_rnn_slots) = attr_part.split_at_mut(1);
                let mut grad_packed = Matrix::default();
                self.rnn.backward_batch_into(
                    sb,
                    &encs[s].cache,
                    &gf,
                    rnn_slots,
                    &mut grad_packed,
                    &mut ws,
                );
                let seqs: Vec<&[usize]> = batch[range.clone()]
                    .iter()
                    .map(|&c| data.sequences[c].as_slice())
                    .collect();
                self.embedding
                    .backward_batch(sb, &seqs, &grad_packed, &mut emb_slot[0]);
                self.attr_rnn.backward_batch_into(
                    attr_sb,
                    &encs[s].attr_cache,
                    &attr_gf,
                    attr_rnn_slots,
                    &mut grad_packed,
                    &mut ws,
                );
                let attr_store: Vec<[usize; 1]> =
                    batch[range].iter().map(|&c| [data.attr_ids[c]]).collect();
                let attr_seqs: Vec<&[usize]> = attr_store.iter().map(|a| a.as_slice()).collect();
                self.attr_embedding.backward_batch(
                    attr_sb,
                    &attr_seqs,
                    &grad_packed,
                    &mut attr_emb_slot[0],
                );
                ws_bytes = ws.pooled_bytes();
            }
            (acc, ws_bytes)
        });
        if etsb_obs::enabled() {
            let bytes: usize = shard_grads.iter().map(|(_, b)| b).sum();
            etsb_obs::gauge("workspace_bytes", bytes as f64);
        }
        let mut iter = shard_grads.into_iter().map(|(acc, _)| acc);
        if let Some(mut total) = iter.next() {
            for b in iter {
                total.merge(&b);
            }
            for (slot, merged) in grads.slots_mut()[..26].iter_mut().zip(total.slots()) {
                slot.add_assign(merged);
            }
        }

        // Length path gradient on the merged batch matrix (slots 26..28).
        let mut grad_len = Matrix::zeros(n, self.len_dim);
        for row in 0..n {
            grad_len
                .row_mut(row)
                .copy_from_slice(&grad_features.row(row)[self.char_dim + self.attr_dim..]);
        }
        let _ = self
            .len_dense
            .backward(&len_cache, &grad_len, &mut grads.slots_mut()[26..28]);
        loss.loss
    }

    /// Error probabilities (evaluation mode), batch-major: each fold shard
    /// of the requested cells packs into one batch per recurrent path, so
    /// inference shares the training hot path.
    pub fn predict_probs(&self, data: &EncodedDataset, cells: &[usize]) -> Vec<f32> {
        self.predict_probs_with(data, cells, KernelPolicy::Exact)
    }

    /// [`EtsbRnn::predict_probs`] under an explicit [`KernelPolicy`]:
    /// `Exact` keeps the bitwise contract, `FastMath` runs both batched
    /// sequence encoders on the fused inference kernels.
    pub fn predict_probs_with(
        &self,
        data: &EncodedDataset,
        cells: &[usize],
        policy: KernelPolicy,
    ) -> Vec<f32> {
        if cells.is_empty() {
            // Zero cells means zero forward passes: never reach the
            // batch-packing, length-dense or head kernels empty.
            return Vec::new();
        }
        let n = cells.len();
        let encs = parallel::parallel_map_shards(n, |_, range| {
            self.encode_shard(data, &cells[range], policy)
        });
        let len_inputs = Matrix::from_fn(n, 1, |r, _| data.length_norms[cells[r]]);
        let (len_feats, _) = self.len_dense.forward(len_inputs);
        let mut features = Matrix::zeros(n, self.feature_dim());
        let mut row = 0usize;
        for enc in &encs {
            for r in 0..enc.feats.rows() {
                let out = features.row_mut(row);
                out[..self.char_dim].copy_from_slice(enc.feats.row(r));
                out[self.char_dim..self.char_dim + self.attr_dim]
                    .copy_from_slice(enc.attr_feats.row(r));
                out[self.char_dim + self.attr_dim..].copy_from_slice(len_feats.row(row));
                row += 1;
            }
        }
        let logits = self.head.forward_eval(&features);
        (0..n)
            .map(|r| {
                let mut row = logits.row(r).to_vec();
                etsb_tensor::softmax_inplace(&mut row);
                row[1]
            })
            .collect()
    }

    /// Parameters: char path, attribute path, length path, head.
    pub fn params(&self) -> Vec<&Param> {
        let mut p = vec![self.embedding.param()];
        p.extend(self.rnn.params());
        p.push(self.attr_embedding.param());
        p.extend(self.attr_rnn.params());
        p.extend(self.len_dense.params());
        p.extend(self.head.params());
        p
    }

    /// Mutable parameters in the same order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let Self {
            embedding,
            rnn,
            attr_embedding,
            attr_rnn,
            len_dense,
            head,
            ..
        } = self;
        let mut p = vec![embedding.param_mut()];
        p.extend(rnn.params_mut());
        p.push(attr_embedding.param_mut());
        p.extend(attr_rnn.params_mut());
        p.extend(len_dense.params_mut());
        p.extend(head.params_mut());
        p
    }

    /// Non-trainable buffers (BatchNorm running statistics).
    pub fn buffers(&self) -> Vec<&Matrix> {
        self.head.buffers()
    }

    /// Mutable buffers in the same order.
    pub fn buffers_mut(&mut self) -> Vec<&mut Matrix> {
        self.head.buffers_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::marked_dataset;
    use etsb_tensor::init::seeded_rng;

    fn small_cfg() -> TrainConfig {
        TrainConfig {
            rnn_units: 6,
            attr_rnn_units: 3,
            head_dim: 6,
            length_dense_dim: 4,
            ..Default::default()
        }
    }

    /// The pre-batching ETSB training step, reproduced exactly: per-sample
    /// workspace forward/backward on both recurrent paths, sharded with
    /// [`parallel::fold_shards`] boundaries and merged in shard order.
    fn reference_train_batch(
        model: &mut EtsbRnn,
        data: &EncodedDataset,
        batch: &[usize],
        grads: &mut GradBuffer,
    ) -> f32 {
        let n = batch.len();
        let mut features = Matrix::zeros(n, model.feature_dim());
        let len_inputs = Matrix::from_fn(n, 1, |r, _| data.length_norms[batch[r]]);
        let (len_feats, len_cache) = model.len_dense.forward(len_inputs);
        let mut ws = Workspace::new();
        let (mut embedded, mut attr_embedded) = (Matrix::default(), Matrix::default());
        let mut char_caches = Vec::with_capacity(n);
        let mut attr_caches = Vec::with_capacity(n);
        for (row, &cell) in batch.iter().enumerate() {
            let (char_feat, attr_feat, cc, ac) = model.encode_seq_paths_into(
                &data.sequences[cell],
                data.attr_ids[cell],
                &mut ws,
                &mut embedded,
                &mut attr_embedded,
            );
            let out = features.row_mut(row);
            out[..model.char_dim].copy_from_slice(&char_feat);
            out[model.char_dim..model.char_dim + model.attr_dim].copy_from_slice(&attr_feat);
            out[model.char_dim + model.attr_dim..].copy_from_slice(len_feats.row(row));
            char_caches.push(cc);
            attr_caches.push(ac);
        }
        let labels: Vec<usize> = batch.iter().map(|&c| usize::from(data.labels[c])).collect();
        let (logits, head_cache) = model.head.forward_train(features);
        let loss = softmax_cross_entropy(&logits, &labels);
        let grad_features = model.head.backward(
            &head_cache,
            &loss.grad_logits,
            &mut grads.slots_mut()[28..34],
        );
        let shards = parallel::fold_shards(n);
        let chunk = n.div_ceil(shards);
        let seq_shapes: Vec<(usize, usize)> = model.params()[..26]
            .iter()
            .map(|p| p.value.shape())
            .collect();
        let (char_dim, attr_dim) = (model.char_dim, model.attr_dim);
        let mut bufs = Vec::new();
        for s in 0..shards {
            let mut acc = GradBuffer::from_shapes(seq_shapes.iter().copied());
            let mut ws = Workspace::new();
            let (mut grad_embedded, mut grad_attr_embedded) =
                (Matrix::default(), Matrix::default());
            for i in (s * chunk).min(n)..((s + 1) * chunk).min(n) {
                let (char_part, attr_part) = acc.slots_mut().split_at_mut(13);
                let (emb_slot, rnn_slots) = char_part.split_at_mut(1);
                let (attr_emb_slot, attr_rnn_slots) = attr_part.split_at_mut(1);
                let (emb_cache, rnn_cache) = &char_caches[i];
                let (attr_emb_cache, attr_rnn_cache) = &attr_caches[i];
                let g = grad_features.row(i);
                model.rnn.backward_into(
                    rnn_cache,
                    &g[..char_dim],
                    rnn_slots,
                    &mut grad_embedded,
                    &mut ws,
                );
                model
                    .embedding
                    .backward(emb_cache, &grad_embedded, &mut emb_slot[0]);
                model.attr_rnn.backward_into(
                    attr_rnn_cache,
                    &g[char_dim..char_dim + attr_dim],
                    attr_rnn_slots,
                    &mut grad_attr_embedded,
                    &mut ws,
                );
                model.attr_embedding.backward(
                    attr_emb_cache,
                    &grad_attr_embedded,
                    &mut attr_emb_slot[0],
                );
            }
            bufs.push(acc);
        }
        let mut iter = bufs.into_iter();
        if let Some(mut total) = iter.next() {
            for b in iter {
                total.merge(&b);
            }
            for (slot, merged) in grads.slots_mut()[..26].iter_mut().zip(total.slots()) {
                slot.add_assign(merged);
            }
        }
        let mut grad_len = Matrix::zeros(n, model.len_dim);
        for row in 0..n {
            grad_len
                .row_mut(row)
                .copy_from_slice(&grad_features.row(row)[model.char_dim + model.attr_dim..]);
        }
        let _ = model
            .len_dense
            .backward(&len_cache, &grad_len, &mut grads.slots_mut()[26..28]);
        loss.loss
    }

    /// The tentpole guarantee for the enriched model: batched shard
    /// execution on both recurrent paths matches the per-sample workspace
    /// path bit for bit — loss, all 34 gradient slots, and predictions.
    #[test]
    fn batched_train_matches_per_sample_reference_bitwise() {
        let data = marked_dataset(30);
        let batch: Vec<usize> = (0..data.n_cells()).collect();
        let mut batched = EtsbRnn::new(&data, &small_cfg(), &mut seeded_rng(7));
        let mut reference = EtsbRnn::new(&data, &small_cfg(), &mut seeded_rng(7));

        let mut grads_b = etsb_nn::grad_buffer_for(&batched.params());
        let mut grads_r = etsb_nn::grad_buffer_for(&reference.params());
        let loss_b = batched.train_batch(&data, &batch, &mut grads_b);
        let loss_r = reference_train_batch(&mut reference, &data, &batch, &mut grads_r);
        assert_eq!(loss_b.to_bits(), loss_r.to_bits(), "loss diverged");
        for i in 0..grads_b.len() {
            assert_eq!(
                grads_b.slot(i).as_slice(),
                grads_r.slot(i).as_slice(),
                "gradient slot {i} diverged"
            );
        }
        let probs_b = batched.predict_probs(&data, &batch);
        let probs_r = reference.predict_probs(&data, &batch);
        assert_eq!(probs_b, probs_r);
    }

    #[test]
    fn feature_dim_composition() {
        let data = marked_dataset(20);
        let model = EtsbRnn::new(&data, &small_cfg(), &mut seeded_rng(1));
        // 2*6 (char) + 2*3 (attr) + 4 (len) = 22.
        assert_eq!(model.feature_dim(), 22);
    }

    #[test]
    fn attribute_information_changes_predictions() {
        // Same character sequence under different attributes must produce
        // different probabilities — the whole point of the enrichment.
        let data = marked_dataset(20);
        let model = EtsbRnn::new(&data, &small_cfg(), &mut seeded_rng(2));
        // Cells 0 and 1 belong to attributes 0 and 1. Fake a dataset view
        // where both carry the same sequence.
        let mut twin = data.clone();
        twin.sequences[1] = twin.sequences[0].clone();
        twin.length_norms[1] = twin.length_norms[0];
        let probs = model.predict_probs(&twin, &[0, 1]);
        assert!(
            (probs[0] - probs[1]).abs() > 1e-6,
            "attribute path had no effect: {probs:?}"
        );
    }

    #[test]
    fn train_batch_reduces_loss() {
        use etsb_nn::{grad_buffer_for, Optimizer, Rmsprop};
        let data = marked_dataset(30);
        let mut model = EtsbRnn::new(&data, &small_cfg(), &mut seeded_rng(3));
        let batch: Vec<usize> = (0..data.n_cells()).collect();
        let mut opt = Rmsprop::new(3e-3);
        let mut grads = grad_buffer_for(&model.params());
        let first = model.train_batch(&data, &batch, &mut grads);
        let mut last = first;
        for _ in 0..60 {
            grads.zero();
            last = model.train_batch(&data, &batch, &mut grads);
            opt.step(&mut model.params_mut(), &grads);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn param_count() {
        let data = marked_dataset(12);
        let model = EtsbRnn::new(&data, &small_cfg(), &mut seeded_rng(4));
        // 1 + 12 (char) + 1 + 12 (attr) + 2 (len dense) + 6 (head) = 34.
        assert_eq!(model.params().len(), 34);
    }
}
