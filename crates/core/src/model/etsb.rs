//! ETSB-RNN (§4.3.2): the enriched architecture. Three input paths are
//! concatenated before the shared head:
//!
//! 1. characters → embedding → two-stacked BiRNN (64 units/direction),
//! 2. attribute id → embedding → two-stacked BiRNN (8 units/direction),
//! 3. `length_norm` scalar → Dense(64, ReLU).

use super::{AnyStacked, AnyStackedCache, Head};
use crate::config::TrainConfig;
use crate::encode::EncodedDataset;
use etsb_nn::{
    parallel, softmax_cross_entropy, Activation, Dense, Embedding, EmbeddingCache, Param,
};
use etsb_tensor::{GradBuffer, Matrix, Workspace};
use rand::rngs::StdRng;

/// A per-path forward cache: embedding lookup + recurrent stack.
type PathCache = (EmbeddingCache, AnyStackedCache);

/// Worker-local scratch for the inference path: one bundle per worker
/// thread, recycled across the cells that worker scores.
struct PredictScratch {
    ws: Workspace,
    rnn_cache: AnyStackedCache,
    attr_rnn_cache: AnyStackedCache,
    emb_cache: EmbeddingCache,
    attr_emb_cache: EmbeddingCache,
    embedded: Matrix,
    attr_embedded: Matrix,
}

/// The Enriched Two-Stacked Bidirectional RNN model.
#[derive(Debug)]
pub struct EtsbRnn {
    embedding: Embedding,
    rnn: AnyStacked,
    attr_embedding: Embedding,
    attr_rnn: AnyStacked,
    len_dense: Dense,
    head: Head,
    char_dim: usize,
    attr_dim: usize,
    len_dim: usize,
}

impl EtsbRnn {
    /// Build for a dataset's value and attribute dictionaries.
    pub fn new(data: &EncodedDataset, cfg: &TrainConfig, rng: &mut StdRng) -> Self {
        let vocab = data.char_index.vocab_size();
        let embed_dim = cfg.embed_dim.unwrap_or(vocab);
        let n_attrs = data.attr_index.len().max(1);
        // The attribute dictionary plays the role of the value dictionary
        // for the metadata path: its embedding width defaults to its size.
        let attr_embed_dim = n_attrs;
        let rnn = AnyStacked::new(cfg.cell, embed_dim, cfg.rnn_units, rng);
        let attr_rnn = AnyStacked::new(cfg.cell, attr_embed_dim, cfg.attr_rnn_units, rng);
        let (char_dim, attr_dim, len_dim) = (
            rnn.output_dim(),
            attr_rnn.output_dim(),
            cfg.length_dense_dim,
        );
        Self {
            embedding: Embedding::new(vocab, embed_dim, rng),
            rnn,
            attr_embedding: Embedding::new(n_attrs, attr_embed_dim, rng),
            attr_rnn,
            len_dense: Dense::new(1, len_dim, Activation::Relu, rng),
            head: Head::new(char_dim + attr_dim + len_dim, cfg.head_dim, rng),
            char_dim,
            attr_dim,
            len_dim,
        }
    }

    /// Concatenated feature width.
    fn feature_dim(&self) -> usize {
        self.char_dim + self.attr_dim + self.len_dim
    }

    /// Character + attribute features for one cell (the length path runs
    /// batched because it is a plain dense layer). Scratch comes from the
    /// worker-local workspace; the returned caches are fresh because the
    /// backward pass needs them after the forward barrier.
    fn encode_seq_paths_into(
        &self,
        seq: &[usize],
        attr: usize,
        ws: &mut Workspace,
        embedded: &mut Matrix,
        attr_embedded: &mut Matrix,
    ) -> (Vec<f32>, Vec<f32>, PathCache, PathCache) {
        let mut emb_cache = EmbeddingCache::default();
        self.embedding.forward_into(seq, embedded, &mut emb_cache);
        let mut rnn_cache = self.rnn.empty_cache();
        let mut char_feat = vec![0.0_f32; self.char_dim];
        self.rnn
            .forward_into(embedded, &mut char_feat, &mut rnn_cache, ws);
        let mut attr_emb_cache = EmbeddingCache::default();
        self.attr_embedding
            .forward_into(&[attr], attr_embedded, &mut attr_emb_cache);
        let mut attr_rnn_cache = self.attr_rnn.empty_cache();
        let mut attr_feat = vec![0.0_f32; self.attr_dim];
        self.attr_rnn
            .forward_into(attr_embedded, &mut attr_feat, &mut attr_rnn_cache, ws);
        (
            char_feat,
            attr_feat,
            (emb_cache, rnn_cache),
            (attr_emb_cache, attr_rnn_cache),
        )
    }

    /// Both sequence-path feature vectors for one cell, inference mode:
    /// every cache is worker-local and recycled.
    fn encode_features_into(
        &self,
        seq: &[usize],
        attr: usize,
        state: &mut PredictScratch,
    ) -> (Vec<f32>, Vec<f32>) {
        let PredictScratch {
            ws,
            rnn_cache,
            attr_rnn_cache,
            emb_cache,
            attr_emb_cache,
            embedded,
            attr_embedded,
        } = state;
        self.embedding.forward_into(seq, embedded, emb_cache);
        let mut char_feat = vec![0.0_f32; self.char_dim];
        self.rnn
            .forward_into(embedded, &mut char_feat, rnn_cache, ws);
        self.attr_embedding
            .forward_into(&[attr], attr_embedded, attr_emb_cache);
        let mut attr_feat = vec![0.0_f32; self.attr_dim];
        self.attr_rnn
            .forward_into(attr_embedded, &mut attr_feat, attr_rnn_cache, ws);
        (char_feat, attr_feat)
    }

    fn predict_scratch(&self) -> PredictScratch {
        PredictScratch {
            ws: Workspace::new(),
            rnn_cache: self.rnn.empty_cache(),
            attr_rnn_cache: self.attr_rnn.empty_cache(),
            emb_cache: EmbeddingCache::default(),
            attr_emb_cache: EmbeddingCache::default(),
            embedded: Matrix::default(),
            attr_embedded: Matrix::default(),
        }
    }

    /// One gradient-accumulating training step; returns the batch loss.
    ///
    /// `grads` has 34 slots in [`EtsbRnn::params`] order: char path
    /// (1 + 12), attribute path (1 + 12), length dense (2), head (6).
    /// Per-sample sequence paths (char + attribute) shard across threads;
    /// the batch-coupled length dense and head stay on merged batch
    /// matrices. Per-thread accumulators merge in a fixed shard order, so
    /// the result is bitwise-identical for any worker count.
    pub fn train_batch(
        &mut self,
        data: &EncodedDataset,
        batch: &[usize],
        grads: &mut GradBuffer,
    ) -> f32 {
        assert!(!batch.is_empty(), "EtsbRnn::train_batch: empty batch");
        assert_eq!(grads.len(), 34, "EtsbRnn::train_batch: gradient slot count");
        let n = batch.len();
        let forward_span = etsb_obs::obs_span!("forward", "samples" => n);
        let mut features = Matrix::zeros(n, self.feature_dim());

        // Length path (batched).
        let len_inputs = Matrix::from_fn(n, 1, |r, _| data.length_norms[batch[r]]);
        let (len_feats, len_cache) = self.len_dense.forward(len_inputs);

        // Per-sample sequence paths are independent: shard them, each
        // worker reusing one workspace + embedding buffers across its
        // samples (zero-on-acquire scratch keeps results identical to the
        // allocating path bit for bit).
        let encoded = parallel::parallel_map_with(
            n,
            || (Workspace::new(), Matrix::default(), Matrix::default()),
            |(ws, embedded, attr_embedded), i| {
                let cell = batch[i];
                self.encode_seq_paths_into(
                    &data.sequences[cell],
                    data.attr_ids[cell],
                    ws,
                    embedded,
                    attr_embedded,
                )
            },
        );
        let mut char_caches = Vec::with_capacity(n);
        let mut attr_caches = Vec::with_capacity(n);
        for (row, (char_feat, attr_feat, cc, ac)) in encoded.into_iter().enumerate() {
            let out = features.row_mut(row);
            out[..self.char_dim].copy_from_slice(&char_feat);
            out[self.char_dim..self.char_dim + self.attr_dim].copy_from_slice(&attr_feat);
            out[self.char_dim + self.attr_dim..].copy_from_slice(len_feats.row(row));
            char_caches.push(cc);
            attr_caches.push(ac);
        }

        let labels: Vec<usize> = batch.iter().map(|&c| usize::from(data.labels[c])).collect();
        let (logits, head_cache) = self.head.forward_train(features);
        let loss = softmax_cross_entropy(&logits, &labels);
        drop(forward_span);

        let _backward_span = etsb_obs::span("backward");
        let grad_features = self.head.backward(
            &head_cache,
            &loss.grad_logits,
            &mut grads.slots_mut()[28..34],
        );

        // Sequence-path backward shards over per-sample work; each thread
        // fills its own buffer over slots 0..26 (char path then attribute
        // path), merged deterministically in shard order.
        let seq_shapes: Vec<(usize, usize)> = self.params()[..26]
            .iter()
            .map(|p| p.value.shape())
            .collect();
        let (char_dim, attr_dim) = (self.char_dim, self.attr_dim);
        let (seq_grads, ..) = parallel::parallel_fold(
            n,
            || {
                (
                    GradBuffer::from_shapes(seq_shapes.iter().copied()),
                    Workspace::new(),
                    Matrix::default(),
                    Matrix::default(),
                )
            },
            |(acc, ws, grad_embedded, grad_attr_embedded), i| {
                let (char_part, attr_part) = acc.slots_mut().split_at_mut(13);
                let (emb_slot, rnn_slots) = char_part.split_at_mut(1);
                let (attr_emb_slot, attr_rnn_slots) = attr_part.split_at_mut(1);
                let (emb_cache, rnn_cache) = &char_caches[i];
                let (attr_emb_cache, attr_rnn_cache) = &attr_caches[i];
                let g = grad_features.row(i);
                self.rnn
                    .backward_into(rnn_cache, &g[..char_dim], rnn_slots, grad_embedded, ws);
                self.embedding
                    .backward(emb_cache, grad_embedded, &mut emb_slot[0]);
                self.attr_rnn.backward_into(
                    attr_rnn_cache,
                    &g[char_dim..char_dim + attr_dim],
                    attr_rnn_slots,
                    grad_attr_embedded,
                    ws,
                );
                self.attr_embedding.backward(
                    attr_emb_cache,
                    grad_attr_embedded,
                    &mut attr_emb_slot[0],
                );
            },
            |a, b| a.0.merge(&b.0),
        );
        for (slot, merged) in grads.slots_mut()[..26].iter_mut().zip(seq_grads.slots()) {
            slot.add_assign(merged);
        }

        // Length path gradient on the merged batch matrix (slots 26..28).
        let mut grad_len = Matrix::zeros(n, self.len_dim);
        for row in 0..n {
            grad_len
                .row_mut(row)
                .copy_from_slice(&grad_features.row(row)[self.char_dim + self.attr_dim..]);
        }
        let _ = self
            .len_dense
            .backward(&len_cache, &grad_len, &mut grads.slots_mut()[26..28]);
        loss.loss
    }

    /// Error probabilities (evaluation mode), parallel across cells, each
    /// worker reusing one scratch bundle (workspace + caches) so a warmed
    /// worker allocates nothing per cell beyond its feature vectors.
    pub fn predict_probs(&self, data: &EncodedDataset, cells: &[usize]) -> Vec<f32> {
        let seq_feats: Vec<(Vec<f32>, Vec<f32>)> = parallel::parallel_map_with(
            cells.len(),
            || self.predict_scratch(),
            |scratch, i| {
                let cell = cells[i];
                self.encode_features_into(&data.sequences[cell], data.attr_ids[cell], scratch)
            },
        );
        let n = cells.len();
        let len_inputs = Matrix::from_fn(n, 1, |r, _| data.length_norms[cells[r]]);
        let (len_feats, _) = self.len_dense.forward(len_inputs);
        let mut features = Matrix::zeros(n, self.feature_dim());
        for (row, (char_feat, attr_feat)) in seq_feats.iter().enumerate() {
            let out = features.row_mut(row);
            out[..self.char_dim].copy_from_slice(char_feat);
            out[self.char_dim..self.char_dim + self.attr_dim].copy_from_slice(attr_feat);
            out[self.char_dim + self.attr_dim..].copy_from_slice(len_feats.row(row));
        }
        let logits = self.head.forward_eval(&features);
        (0..n)
            .map(|r| {
                let mut row = logits.row(r).to_vec();
                etsb_tensor::softmax_inplace(&mut row);
                row[1]
            })
            .collect()
    }

    /// Parameters: char path, attribute path, length path, head.
    pub fn params(&self) -> Vec<&Param> {
        let mut p = vec![self.embedding.param()];
        p.extend(self.rnn.params());
        p.push(self.attr_embedding.param());
        p.extend(self.attr_rnn.params());
        p.extend(self.len_dense.params());
        p.extend(self.head.params());
        p
    }

    /// Mutable parameters in the same order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let Self {
            embedding,
            rnn,
            attr_embedding,
            attr_rnn,
            len_dense,
            head,
            ..
        } = self;
        let mut p = vec![embedding.param_mut()];
        p.extend(rnn.params_mut());
        p.push(attr_embedding.param_mut());
        p.extend(attr_rnn.params_mut());
        p.extend(len_dense.params_mut());
        p.extend(head.params_mut());
        p
    }

    /// Non-trainable buffers (BatchNorm running statistics).
    pub fn buffers(&self) -> Vec<&Matrix> {
        self.head.buffers()
    }

    /// Mutable buffers in the same order.
    pub fn buffers_mut(&mut self) -> Vec<&mut Matrix> {
        self.head.buffers_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::marked_dataset;
    use etsb_tensor::init::seeded_rng;

    fn small_cfg() -> TrainConfig {
        TrainConfig {
            rnn_units: 6,
            attr_rnn_units: 3,
            head_dim: 6,
            length_dense_dim: 4,
            ..Default::default()
        }
    }

    #[test]
    fn feature_dim_composition() {
        let data = marked_dataset(20);
        let model = EtsbRnn::new(&data, &small_cfg(), &mut seeded_rng(1));
        // 2*6 (char) + 2*3 (attr) + 4 (len) = 22.
        assert_eq!(model.feature_dim(), 22);
    }

    #[test]
    fn attribute_information_changes_predictions() {
        // Same character sequence under different attributes must produce
        // different probabilities — the whole point of the enrichment.
        let data = marked_dataset(20);
        let model = EtsbRnn::new(&data, &small_cfg(), &mut seeded_rng(2));
        // Cells 0 and 1 belong to attributes 0 and 1. Fake a dataset view
        // where both carry the same sequence.
        let mut twin = data.clone();
        twin.sequences[1] = twin.sequences[0].clone();
        twin.length_norms[1] = twin.length_norms[0];
        let probs = model.predict_probs(&twin, &[0, 1]);
        assert!(
            (probs[0] - probs[1]).abs() > 1e-6,
            "attribute path had no effect: {probs:?}"
        );
    }

    #[test]
    fn train_batch_reduces_loss() {
        use etsb_nn::{grad_buffer_for, Optimizer, Rmsprop};
        let data = marked_dataset(30);
        let mut model = EtsbRnn::new(&data, &small_cfg(), &mut seeded_rng(3));
        let batch: Vec<usize> = (0..data.n_cells()).collect();
        let mut opt = Rmsprop::new(3e-3);
        let mut grads = grad_buffer_for(&model.params());
        let first = model.train_batch(&data, &batch, &mut grads);
        let mut last = first;
        for _ in 0..60 {
            grads.zero();
            last = model.train_batch(&data, &batch, &mut grads);
            opt.step(&mut model.params_mut(), &grads);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn param_count() {
        let data = marked_dataset(12);
        let model = EtsbRnn::new(&data, &small_cfg(), &mut seeded_rng(4));
        // 1 + 12 (char) + 1 + 12 (attr) + 2 (len dense) + 6 (head) = 34.
        assert_eq!(model.params().len(), 34);
    }
}
