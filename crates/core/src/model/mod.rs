//! The paper's two neural architectures (§4.3) and their shared
//! classification head.

mod etsb;
mod tsb;

pub use etsb::EtsbRnn;
pub use tsb::TsbRnn;

use crate::config::{CellKind, ModelKind, TrainConfig};
use crate::encode::EncodedDataset;
use etsb_nn::{
    Activation, BatchNorm, BatchNormCache, Dense, DenseCache, GruCell, LstmCell, Param, RnnCell,
    StackedBiRnn, StackedBiRnnCache,
};
use etsb_tensor::{KernelPolicy, Matrix, Workspace};
use rand::rngs::StdRng;

/// A cache built by one cell kind was handed to another — an internal
/// invariant violation (caches are created by [`AnyStacked::empty_cache`]
/// or [`AnyStacked::forward`] on the same instance), never a data error.
fn cache_mismatch() -> ! {
    // etsb: allow(no-unwrap) -- internal invariant: cache variants are produced by this enum
    panic!("AnyStacked: cache kind does not match cell kind")
}

/// A two-stacked bidirectional encoder over any supported recurrent cell,
/// dispatched at runtime so [`crate::config::TrainConfig::cell`] can swap
/// vanilla RNN / LSTM / GRU without changing the model code.
// Variant sizes differ (LSTM carries 4x gate weights); one instance lives
// per model, so the footprint difference is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub(crate) enum AnyStacked {
    Vanilla(StackedBiRnn<RnnCell>),
    Lstm(StackedBiRnn<LstmCell>),
    Gru(StackedBiRnn<GruCell>),
}

/// Cache matching the active variant of [`AnyStacked`].
// Variant sizes legitimately differ (LSTM caches gates and cell states);
// these are short-lived per-sample values, not stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub(crate) enum AnyStackedCache {
    Vanilla(StackedBiRnnCache<RnnCell>),
    Lstm(StackedBiRnnCache<LstmCell>),
    Gru(StackedBiRnnCache<GruCell>),
}

impl AnyStacked {
    pub(crate) fn new(kind: CellKind, input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        match kind {
            CellKind::Vanilla => AnyStacked::Vanilla(StackedBiRnn::new(input_dim, hidden, rng)),
            CellKind::Lstm => AnyStacked::Lstm(StackedBiRnn::new(input_dim, hidden, rng)),
            CellKind::Gru => AnyStacked::Gru(StackedBiRnn::new(input_dim, hidden, rng)),
        }
    }

    pub(crate) fn output_dim(&self) -> usize {
        match self {
            AnyStacked::Vanilla(n) => n.output_dim(),
            AnyStacked::Lstm(n) => n.output_dim(),
            AnyStacked::Gru(n) => n.output_dim(),
        }
    }

    /// A reusable cache matching this instance's cell kind, for the
    /// allocation-free `_into` paths. Its buffers grow on first use and
    /// are recycled across samples.
    pub(crate) fn empty_cache(&self) -> AnyStackedCache {
        match self {
            AnyStacked::Vanilla(_) => AnyStackedCache::Vanilla(Default::default()),
            AnyStacked::Lstm(_) => AnyStackedCache::Lstm(Default::default()),
            AnyStacked::Gru(_) => AnyStackedCache::Gru(Default::default()),
        }
    }

    /// Allocation-free per-sample forward: the feature vector lands in
    /// `out`, the cache and workspace buffers are recycled across samples.
    /// The production paths run batch-major; this is the per-sample
    /// reference the bitwise-equivalence tests compare against.
    #[cfg(test)]
    pub(crate) fn forward_into(
        &self,
        inputs: &Matrix,
        out: &mut [f32],
        cache: &mut AnyStackedCache,
        ws: &mut Workspace,
    ) {
        match (self, cache) {
            (AnyStacked::Vanilla(n), AnyStackedCache::Vanilla(c)) => {
                n.forward_into(inputs, out, c, ws);
            }
            (AnyStacked::Lstm(n), AnyStackedCache::Lstm(c)) => n.forward_into(inputs, out, c, ws),
            (AnyStacked::Gru(n), AnyStackedCache::Gru(c)) => n.forward_into(inputs, out, c, ws),
            _ => cache_mismatch(),
        }
    }

    /// Per-sample backward on `&self`: parameter gradients accumulate into
    /// `grads` (one slot per parameter, [`AnyStacked::params`] order).
    /// Like [`AnyStacked::forward_into`], kept as the per-sample reference
    /// for the bitwise-equivalence tests.
    #[cfg(test)]
    pub(crate) fn backward_into(
        &self,
        cache: &AnyStackedCache,
        grad_out: &[f32],
        grads: &mut [Matrix],
        grad_inputs: &mut Matrix,
        ws: &mut Workspace,
    ) {
        match (self, cache) {
            (AnyStacked::Vanilla(n), AnyStackedCache::Vanilla(c)) => {
                n.backward_into(c, grad_out, grads, grad_inputs, ws);
            }
            (AnyStacked::Lstm(n), AnyStackedCache::Lstm(c)) => {
                n.backward_into(c, grad_out, grads, grad_inputs, ws);
            }
            (AnyStacked::Gru(n), AnyStackedCache::Gru(c)) => {
                n.backward_into(c, grad_out, grads, grad_inputs, ws);
            }
            _ => cache_mismatch(),
        }
    }

    /// Batched encode of a packed timestep-major batch (see
    /// [`etsb_nn::SeqBatch`]): each sample's feature vector lands in
    /// `features` row `orig` (original batch order). Bitwise identical to
    /// per-sample [`AnyStacked::forward_into`] calls under
    /// [`KernelPolicy::Exact`]; epsilon-close under `FastMath`.
    pub(crate) fn forward_batch_into(
        &self,
        packed: &Matrix,
        batch: &etsb_nn::SeqBatch,
        features: &mut Matrix,
        cache: &mut AnyStackedCache,
        ws: &mut Workspace,
        policy: KernelPolicy,
    ) {
        match (self, cache) {
            (AnyStacked::Vanilla(n), AnyStackedCache::Vanilla(c)) => {
                n.forward_batch_into(packed, batch, features, c, ws, policy);
            }
            (AnyStacked::Lstm(n), AnyStackedCache::Lstm(c)) => {
                n.forward_batch_into(packed, batch, features, c, ws, policy);
            }
            (AnyStacked::Gru(n), AnyStackedCache::Gru(c)) => {
                n.forward_batch_into(packed, batch, features, c, ws, policy);
            }
            _ => cache_mismatch(),
        }
    }

    /// Batched backward from per-sample feature gradients (`grad_features`
    /// row `orig` is sample `orig`'s gradient); input gradients come back
    /// in packed layout. Bitwise identical to per-sample
    /// [`AnyStacked::backward_into`] calls in original batch order.
    pub(crate) fn backward_batch_into(
        &self,
        batch: &etsb_nn::SeqBatch,
        cache: &AnyStackedCache,
        grad_features: &Matrix,
        grads: &mut [Matrix],
        grad_inputs: &mut Matrix,
        ws: &mut Workspace,
    ) {
        match (self, cache) {
            (AnyStacked::Vanilla(n), AnyStackedCache::Vanilla(c)) => {
                n.backward_batch_into(batch, c, grad_features, grads, grad_inputs, ws);
            }
            (AnyStacked::Lstm(n), AnyStackedCache::Lstm(c)) => {
                n.backward_batch_into(batch, c, grad_features, grads, grad_inputs, ws);
            }
            (AnyStacked::Gru(n), AnyStackedCache::Gru(c)) => {
                n.backward_batch_into(batch, c, grad_features, grads, grad_inputs, ws);
            }
            _ => cache_mismatch(),
        }
    }

    pub(crate) fn params(&self) -> Vec<&Param> {
        match self {
            AnyStacked::Vanilla(n) => n.params(),
            AnyStacked::Lstm(n) => n.params(),
            AnyStacked::Gru(n) => n.params(),
        }
    }

    pub(crate) fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            AnyStacked::Vanilla(n) => n.params_mut(),
            AnyStacked::Lstm(n) => n.params_mut(),
            AnyStacked::Gru(n) => n.params_mut(),
        }
    }
}

/// The shared classification head: Dense(`head_dim`, ReLU) → BatchNorm →
/// Dense(2, linear) feeding the softmax cross-entropy loss. §4.3.1
/// describes exactly this stack for TSB-RNN; ETSB-RNN reuses it over a
/// wider concatenated feature vector.
#[derive(Clone, Debug)]
pub(crate) struct Head {
    dense: Dense,
    bn: BatchNorm,
    out: Dense,
}

pub(crate) struct HeadCache {
    dense: DenseCache,
    bn: BatchNormCache,
    out: DenseCache,
}

impl Head {
    pub(crate) fn new(input_dim: usize, head_dim: usize, rng: &mut StdRng) -> Self {
        Self {
            dense: Dense::new(input_dim, head_dim, Activation::Relu, rng),
            bn: BatchNorm::new(head_dim),
            out: Dense::new(head_dim, 2, Activation::Linear, rng),
        }
    }

    /// Training-mode forward (batch statistics in the BatchNorm).
    pub(crate) fn forward_train(&mut self, features: Matrix) -> (Matrix, HeadCache) {
        let (h, dense) = self.dense.forward(features);
        let (n, bn) = self.bn.forward_train(&h);
        let (logits, out) = self.out.forward(n);
        (logits, HeadCache { dense, bn, out })
    }

    /// Evaluation-mode forward (running statistics in the BatchNorm).
    /// Borrows the feature matrix; every stage is row-independent, so
    /// logits for a cell do not depend on which other cells share the
    /// batch — the property the memoized predict path relies on.
    pub(crate) fn forward_eval(&self, features: &Matrix) -> Matrix {
        let mut h = Matrix::default();
        self.dense.forward_eval_into(features, &mut h);
        let n = self.bn.forward_eval(&h);
        let (logits, _) = self.out.forward(n);
        logits
    }

    /// Backward through the head, accumulating into `grads` (6 slots in
    /// [`Head::params`] order: dense w/b, bn γ/β, out w/b); returns the
    /// feature gradient.
    pub(crate) fn backward(
        &self,
        cache: &HeadCache,
        grad_logits: &Matrix,
        grads: &mut [Matrix],
    ) -> Matrix {
        assert_eq!(grads.len(), 6, "Head::backward: expected 6 gradient slots");
        let (dense_g, rest) = grads.split_at_mut(2);
        let (bn_g, out_g) = rest.split_at_mut(2);
        let g = self.out.backward(&cache.out, grad_logits, out_g);
        let g = self.bn.backward(&cache.bn, &g, bn_g);
        self.dense.backward(&cache.dense, &g, dense_g)
    }

    pub(crate) fn params(&self) -> Vec<&Param> {
        let mut p = self.dense.params();
        p.extend(self.bn.params());
        p.extend(self.out.params());
        p
    }

    pub(crate) fn params_mut(&mut self) -> Vec<&mut Param> {
        let (d, b, o) = (&mut self.dense, &mut self.bn, &mut self.out);
        let mut p = d.params_mut();
        p.extend(b.params_mut());
        p.extend(o.params_mut());
        p
    }

    /// Non-trainable state that must survive checkpointing: the
    /// BatchNorm running statistics used by evaluation mode.
    pub(crate) fn buffers(&self) -> Vec<&Matrix> {
        vec![&self.bn.running_mean, &self.bn.running_var]
    }

    pub(crate) fn buffers_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.bn.running_mean, &mut self.bn.running_var]
    }
}

/// Either architecture behind one interface, so the trainer and pipeline
/// are model-agnostic.
// One model exists per experiment; the size difference between the
// variants' inline headers is irrelevant next to their heap-owned weights.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum AnyModel {
    /// Two-Stacked Bidirectional RNN.
    Tsb(TsbRnn),
    /// Enriched Two-Stacked Bidirectional RNN.
    Etsb(EtsbRnn),
}

impl AnyModel {
    /// Construct the requested architecture for a dataset's dictionaries.
    pub fn new(
        kind: ModelKind,
        data: &EncodedDataset,
        cfg: &TrainConfig,
        rng: &mut StdRng,
    ) -> Self {
        match kind {
            ModelKind::Tsb => AnyModel::Tsb(TsbRnn::new(data, cfg, rng)),
            ModelKind::Etsb => AnyModel::Etsb(EtsbRnn::new(data, cfg, rng)),
        }
    }

    /// One training step over a batch of cell indices: forward, loss,
    /// backward. Gradients *accumulate* into `grads` (shaped by
    /// [`AnyModel::grad_buffer`]; the caller owns zeroing and the
    /// optimizer step). Per-sample sequence paths shard across threads
    /// with a fixed, worker-independent merge order, so results are
    /// bitwise-identical for any thread count. Returns the mean batch
    /// loss.
    pub fn train_batch(
        &mut self,
        data: &EncodedDataset,
        batch: &[usize],
        grads: &mut etsb_tensor::GradBuffer,
    ) -> f32 {
        match self {
            AnyModel::Tsb(m) => m.train_batch(data, batch, grads),
            AnyModel::Etsb(m) => m.train_batch(data, batch, grads),
        }
    }

    /// A zeroed gradient buffer matching this model's parameter list.
    pub fn grad_buffer(&self) -> etsb_tensor::GradBuffer {
        etsb_nn::grad_buffer_for(&self.params())
    }

    /// Error probability (class-1 softmax output) per requested cell,
    /// evaluation mode, parallel across cells.
    ///
    /// Duplicate cells are memoized: cells sharing a [`memo_key`] (same
    /// attribute, same character sequence, same normalized length — i.e.
    /// every model input) run the network once and share the probability.
    /// Real tables repeat values heavily, so this skips most of the
    /// forward passes without changing a single bit of the output: the
    /// evaluation head is row-independent, so a representative's
    /// probability is identical whichever batch it is computed in.
    pub fn predict_probs(&self, data: &EncodedDataset, cells: &[usize]) -> Vec<f32> {
        self.predict_probs_cached(data, cells, &mut crate::cache::PredictCache::disabled())
    }

    /// [`AnyModel::predict_probs`] under an explicit [`KernelPolicy`]:
    /// `Exact` is the bitwise reference path; `FastMath` routes the
    /// batched sequence encoders through the fused inference kernels
    /// (epsilon-close probabilities, see the fast-math equivalence
    /// suite). The head and memoization logic are shared either way.
    pub fn predict_probs_with(
        &self,
        data: &EncodedDataset,
        cells: &[usize],
        policy: KernelPolicy,
    ) -> Vec<f32> {
        self.predict_probs_cached_with(
            data,
            cells,
            &mut crate::cache::PredictCache::disabled(),
            policy,
        )
    }

    /// [`AnyModel::predict_probs`] with a caller-owned cross-call cache:
    /// representatives whose key is already resident are served from
    /// `cache` without a forward pass, and freshly computed
    /// representatives are inserted. Because a cached probability was
    /// produced by the same deterministic, row-independent evaluation
    /// path, the output is bitwise identical to an uncached call — the
    /// cache only changes how much work is done, never the bits.
    ///
    /// With [`crate::cache::PredictCache::disabled`] this is exactly the
    /// per-call memo (no owned keys are even built).
    pub fn predict_probs_cached(
        &self,
        data: &EncodedDataset,
        cells: &[usize],
        cache: &mut crate::cache::PredictCache,
    ) -> Vec<f32> {
        self.predict_probs_cached_with(data, cells, cache, KernelPolicy::Exact)
    }

    /// [`AnyModel::predict_probs_cached`] under an explicit
    /// [`KernelPolicy`]. Cache keys do not encode the policy, so a given
    /// `cache` must only ever be fed one policy (the serve engine pins
    /// the policy per service instance); mixing policies on one cache
    /// would conflate exact and fast-math bits.
    pub fn predict_probs_cached_with(
        &self,
        data: &EncodedDataset,
        cells: &[usize],
        cache: &mut crate::cache::PredictCache,
        policy: KernelPolicy,
    ) -> Vec<f32> {
        use std::collections::HashMap;
        if cells.is_empty() {
            return Vec::new();
        }
        let mut slot_of: HashMap<(usize, u32, &[usize]), usize> = HashMap::new();
        let mut reps: Vec<usize> = Vec::new();
        // Representative index per requested cell, first-encounter order.
        let assignment: Vec<usize> = cells
            .iter()
            .map(|&cell| {
                *slot_of.entry(memo_key(data, cell)).or_insert_with(|| {
                    reps.push(cell);
                    reps.len() - 1
                })
            })
            .collect();
        // Probe the shared cache per representative (skipped entirely for
        // a disabled cache so the plain path never allocates keys).
        let mut rep_probs: Vec<Option<f32>> = vec![None; reps.len()];
        let mut rep_keys: Vec<Option<crate::cache::PredictKey>> = vec![None; reps.len()];
        if cache.enabled() {
            for (slot, &cell) in reps.iter().enumerate() {
                let key = owned_memo_key(data, cell);
                rep_probs[slot] = cache.get(&key);
                rep_keys[slot] = Some(key);
            }
        }
        let miss_slots: Vec<usize> = (0..reps.len())
            .filter(|&s| rep_probs[s].is_none())
            .collect();
        let miss_cells: Vec<usize> = miss_slots.iter().map(|&s| reps[s]).collect();
        if etsb_obs::enabled() {
            etsb_obs::emit(
                "counter",
                vec![
                    ("name", etsb_obs::FieldValue::from("predict_cells")),
                    ("value", etsb_obs::FieldValue::from(cells.len())),
                ],
            );
            etsb_obs::emit(
                "counter",
                vec![
                    ("name", etsb_obs::FieldValue::from("predict_unique")),
                    ("value", etsb_obs::FieldValue::from(reps.len())),
                ],
            );
            etsb_obs::emit(
                "counter",
                vec![
                    ("name", etsb_obs::FieldValue::from("predict_cache_hits")),
                    (
                        "value",
                        etsb_obs::FieldValue::from(reps.len() - miss_slots.len()),
                    ),
                ],
            );
        }
        let computed = self.predict_probs_direct_with(data, &miss_cells, policy);
        for (&slot, prob) in miss_slots.iter().zip(computed) {
            rep_probs[slot] = Some(prob);
            if let Some(key) = rep_keys[slot].take() {
                cache.insert(key, prob);
            }
        }
        assignment
            .into_iter()
            .map(|slot| rep_probs[slot].unwrap_or(f32::NAN))
            .collect()
    }

    /// The un-memoized prediction path: one forward pass per requested
    /// cell, duplicates and all. [`AnyModel::predict_probs`] reduces to
    /// this on the deduplicated representatives; tests compare the two
    /// for bitwise equality.
    pub fn predict_probs_direct(&self, data: &EncodedDataset, cells: &[usize]) -> Vec<f32> {
        self.predict_probs_direct_with(data, cells, KernelPolicy::Exact)
    }

    /// [`AnyModel::predict_probs_direct`] under an explicit
    /// [`KernelPolicy`].
    pub fn predict_probs_direct_with(
        &self,
        data: &EncodedDataset,
        cells: &[usize],
        policy: KernelPolicy,
    ) -> Vec<f32> {
        match self {
            AnyModel::Tsb(m) => m.predict_probs_with(data, cells, policy),
            AnyModel::Etsb(m) => m.predict_probs_with(data, cells, policy),
        }
    }

    /// Hard predictions at threshold 0.5.
    pub fn predict(&self, data: &EncodedDataset, cells: &[usize]) -> Vec<bool> {
        self.predict_with(data, cells, KernelPolicy::Exact)
    }

    /// Hard predictions at threshold 0.5 under an explicit kernel
    /// policy (`etsb detect --fast-math` routes through here).
    pub fn predict_with(
        &self,
        data: &EncodedDataset,
        cells: &[usize],
        policy: KernelPolicy,
    ) -> Vec<bool> {
        self.predict_probs_with(data, cells, policy)
            .into_iter()
            .map(|p| p >= 0.5)
            .collect()
    }

    /// All parameters in stable order.
    pub fn params(&self) -> Vec<&Param> {
        match self {
            AnyModel::Tsb(m) => m.params(),
            AnyModel::Etsb(m) => m.params(),
        }
    }

    /// Mutable parameters in the same order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            AnyModel::Tsb(m) => m.params_mut(),
            AnyModel::Etsb(m) => m.params_mut(),
        }
    }

    /// Total trainable weights.
    pub fn n_weights(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Non-trainable buffers (BatchNorm running statistics).
    pub fn buffers(&self) -> Vec<&Matrix> {
        match self {
            AnyModel::Tsb(m) => m.buffers(),
            AnyModel::Etsb(m) => m.buffers(),
        }
    }

    /// Mutable buffers in the same order.
    pub fn buffers_mut(&mut self) -> Vec<&mut Matrix> {
        match self {
            AnyModel::Tsb(m) => m.buffers_mut(),
            AnyModel::Etsb(m) => m.buffers_mut(),
        }
    }

    /// Serialize current weights *and* the evaluation-mode buffers
    /// (BatchNorm running statistics) — both are needed to reproduce the
    /// checkpointed epoch exactly.
    pub fn snapshot(&self) -> bytes::Bytes {
        use bytes::BufMut;
        let params = self.params();
        let buffers = self.buffers();
        let mut buf = bytes::BytesMut::new();
        buf.put_u64_le((params.len() + buffers.len()) as u64);
        for p in params {
            etsb_tensor::encode_matrix(&p.value, &mut buf);
        }
        for b in buffers {
            etsb_tensor::encode_matrix(b, &mut buf);
        }
        buf.freeze()
    }

    /// Restore a snapshot taken from an identically-shaped model.
    pub fn restore(&mut self, snap: &bytes::Bytes) -> Result<(), etsb_nn::CheckpointError> {
        use bytes::Buf;
        use etsb_nn::CheckpointError;
        use etsb_tensor::DecodeError;
        let mut buf = snap.clone();
        if buf.remaining() < 8 {
            return Err(CheckpointError::Decode(DecodeError::Truncated {
                needed: 8,
                available: buf.remaining(),
            }));
        }
        let count = buf.get_u64_le() as usize;
        let expected = self.params().len() + self.buffers().len();
        if count != expected {
            return Err(CheckpointError::CountMismatch {
                snapshot: count,
                target: expected,
            });
        }
        // Decode everything before mutating so errors leave the model intact.
        let mut decoded = Vec::with_capacity(count);
        for _ in 0..count {
            decoded.push(etsb_tensor::decode_matrix(&mut buf)?);
        }
        {
            let params = self.params();
            let buffers = self.buffers();
            for (i, (target, got)) in params
                .iter()
                .map(|p| p.value.shape())
                .chain(buffers.iter().map(|b| b.shape()))
                .zip(decoded.iter().map(|m| m.shape()))
                .enumerate()
            {
                if target != got {
                    return Err(CheckpointError::ShapeMismatch {
                        index: i,
                        snapshot: got,
                        target,
                    });
                }
            }
        }
        let n_params = self.params().len();
        let mut iter = decoded.into_iter();
        for (p, m) in self
            .params_mut()
            .into_iter()
            .zip(iter.by_ref().take(n_params))
        {
            p.value = m;
        }
        for (b, m) in self.buffers_mut().into_iter().zip(iter) {
            *b = m;
        }
        Ok(())
    }

    /// Clone the full evaluation-relevant state (parameter values followed
    /// by buffers) as plain matrices — an in-memory, infallible
    /// alternative to [`AnyModel::snapshot`] for the trainer's
    /// best-epoch checkpoint.
    pub fn clone_state(&self) -> Vec<Matrix> {
        self.params()
            .iter()
            .map(|p| p.value.clone())
            .chain(self.buffers().iter().map(|b| (*b).clone()))
            .collect()
    }

    /// Restore state captured by [`AnyModel::clone_state`] on the same
    /// model.
    ///
    /// # Panics
    /// If `state` does not match this model's parameter/buffer layout.
    pub fn load_state(&mut self, state: &[Matrix]) {
        let n_params = self.params().len();
        assert_eq!(
            state.len(),
            n_params + self.buffers().len(),
            "AnyModel::load_state: state matrix count"
        );
        for (p, m) in self.params_mut().into_iter().zip(&state[..n_params]) {
            assert_eq!(
                p.value.shape(),
                m.shape(),
                "AnyModel::load_state: parameter shape"
            );
            p.value = m.clone();
        }
        for (b, m) in self.buffers_mut().into_iter().zip(&state[n_params..]) {
            assert_eq!(b.shape(), m.shape(), "AnyModel::load_state: buffer shape");
            *b = m.clone();
        }
    }
}

/// The memoization key for one cell: every input either architecture
/// reads. Two cells with equal keys are indistinguishable to the models
/// — same attribute embedding id, same normalized-length scalar (compared
/// by bit pattern, so `-0.0 != 0.0` and NaNs never merge), same character
/// sequence — so they necessarily score the same probability.
pub fn memo_key(data: &EncodedDataset, cell: usize) -> (usize, u32, &[usize]) {
    (
        data.attr_ids[cell],
        data.length_norms[cell].to_bits(),
        data.sequences[cell].as_slice(),
    )
}

/// Owned form of [`memo_key`] for caches that outlive the dataset borrow
/// ([`crate::cache::PredictCache`]).
pub fn owned_memo_key(data: &EncodedDataset, cell: usize) -> crate::cache::PredictKey {
    (
        data.attr_ids[cell],
        data.length_norms[cell].to_bits(),
        data.sequences[cell].clone(),
    )
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use etsb_table::{CellFrame, Table};

    /// A small dataset where errors carry the marker character '!'.
    pub(crate) fn marked_dataset(n: usize) -> EncodedDataset {
        let mut dirty = Table::with_columns(&["v", "w"]);
        let mut clean = Table::with_columns(&["v", "w"]);
        for i in 0..n {
            let v = format!("val{}", i % 5);
            let w = format!("{}", 10 + (i % 4));
            if i % 3 == 0 {
                dirty.push_row(vec![format!("{v}!"), w.clone()]);
            } else {
                dirty.push_row(vec![v.clone(), w.clone()]);
            }
            clean.push_row(vec![v, w]);
        }
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        EncodedDataset::from_frame(&frame)
    }

    /// Train `model` for `epochs` full-batch epochs on all cells and
    /// return the final loss.
    pub(crate) fn overfit(model: &mut AnyModel, data: &EncodedDataset, epochs: usize) -> f32 {
        use etsb_nn::{Optimizer, Rmsprop};
        let all: Vec<usize> = (0..data.n_cells()).collect();
        let mut opt = Rmsprop::new(5e-3);
        let mut grads = model.grad_buffer();
        let mut last = f32::INFINITY;
        for _ in 0..epochs {
            grads.zero();
            last = model.train_batch(data, &all, &mut grads);
            opt.step(&mut model.params_mut(), &grads);
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use etsb_tensor::init::seeded_rng;

    #[test]
    fn head_gradient_check() {
        let mut rng = seeded_rng(1);
        let head = Head::new(4, 3, &mut rng);
        let x = Matrix::from_fn(6, 4, |i, j| ((i * 4 + j) as f32 * 0.37).sin());
        let labels = [0usize, 1, 0, 1, 1, 0];

        let loss_of = |h: &Head, x: &Matrix| {
            let mut h = h.clone();
            let (logits, _) = h.forward_train(x.clone());
            etsb_nn::softmax_cross_entropy(&logits, &labels).loss
        };

        let mut work = head.clone();
        let (logits, cache) = work.forward_train(x.clone());
        let loss = etsb_nn::softmax_cross_entropy(&logits, &labels);
        let mut grads = etsb_nn::grad_buffer_for(&work.params());
        let grad_x = work.backward(&cache, &loss.grad_logits, grads.slots_mut());

        let h = 1e-2_f32;
        // One coordinate from each parameter bank.
        for pi in 0..work.params().len() {
            let analytic = grads.slot(pi)[(0, 0)];
            let mut plus = head.clone();
            plus.params_mut()[pi].value[(0, 0)] += h;
            let mut minus = head.clone();
            minus.params_mut()[pi].value[(0, 0)] -= h;
            let numeric = (loss_of(&plus, &x) - loss_of(&minus, &x)) / (2.0 * h);
            assert!(
                (numeric - analytic).abs() < 5e-2 * analytic.abs().max(0.2),
                "param {pi}: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Input gradient.
        let analytic = grad_x[(2, 1)];
        let mut xp = x.clone();
        xp[(2, 1)] += h;
        let mut xm = x.clone();
        xm[(2, 1)] -= h;
        let numeric = (loss_of(&head, &xp) - loss_of(&head, &xm)) / (2.0 * h);
        assert!(
            (numeric - analytic).abs() < 5e-2 * analytic.abs().max(0.2),
            "input grad: numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn both_models_construct_and_count_weights() {
        let data = marked_dataset(30);
        let cfg = TrainConfig {
            rnn_units: 8,
            attr_rnn_units: 4,
            head_dim: 8,
            ..Default::default()
        };
        let mut rng = seeded_rng(2);
        let tsb = AnyModel::new(ModelKind::Tsb, &data, &cfg, &mut rng);
        let etsb = AnyModel::new(ModelKind::Etsb, &data, &cfg, &mut rng);
        assert!(tsb.n_weights() > 0);
        // ETSB has strictly more parameters (extra input paths).
        assert!(etsb.n_weights() > tsb.n_weights());
    }

    #[test]
    fn snapshot_round_trips() {
        let data = marked_dataset(20);
        let cfg = TrainConfig {
            rnn_units: 4,
            head_dim: 4,
            ..Default::default()
        };
        let mut rng = seeded_rng(3);
        let mut model = AnyModel::new(ModelKind::Tsb, &data, &cfg, &mut rng);
        let snap = model.snapshot();
        let before = model.predict_probs(&data, &[0, 1, 2]);
        // Perturb, then restore.
        for p in model.params_mut() {
            p.value.map_inplace(|x| x + 0.1);
        }
        let perturbed = model.predict_probs(&data, &[0, 1, 2]);
        assert_ne!(before, perturbed);
        model.restore(&snap).unwrap();
        assert_eq!(before, model.predict_probs(&data, &[0, 1, 2]));
    }

    /// Every cell kind must train end-to-end (the ablation_cells bench
    /// depends on all three being functional).
    #[test]
    fn lstm_and_gru_cells_train() {
        use crate::config::CellKind;
        let data = marked_dataset(24);
        for cell in [CellKind::Lstm, CellKind::Gru] {
            let cfg = TrainConfig {
                rnn_units: 6,
                attr_rnn_units: 3,
                head_dim: 6,
                cell,
                ..Default::default()
            };
            let mut rng = seeded_rng(9);
            let mut model = AnyModel::new(ModelKind::Tsb, &data, &cfg, &mut rng);
            let loss = overfit(&mut model, &data, 120);
            assert!(loss < 0.3, "{cell:?} failed to fit: loss {loss}");
        }
    }

    /// The headline sanity check: both models must be able to overfit a
    /// small marked dataset (loss → ~0, perfect train predictions).
    #[test]
    fn models_overfit_marked_errors() {
        let data = marked_dataset(24);
        let cfg = TrainConfig {
            rnn_units: 8,
            attr_rnn_units: 4,
            head_dim: 8,
            ..Default::default()
        };
        for kind in [ModelKind::Tsb, ModelKind::Etsb] {
            let mut rng = seeded_rng(4);
            let mut model = AnyModel::new(kind, &data, &cfg, &mut rng);
            let loss = overfit(&mut model, &data, 150);
            assert!(loss < 0.1, "{kind:?} failed to overfit: loss {loss}");
            let preds = model.predict(&data, &(0..data.n_cells()).collect::<Vec<_>>());
            let correct = preds
                .iter()
                .zip(&data.labels)
                .filter(|(p, l)| *p == *l)
                .count();
            assert!(
                correct as f64 / data.n_cells() as f64 > 0.95,
                "{kind:?} train accuracy {correct}/{}",
                data.n_cells()
            );
        }
    }

    /// Regression: zero requested cells must return an empty result, not
    /// reach the batch-packing/head kernels (which assert non-empty).
    #[test]
    fn predict_probs_on_zero_cells_returns_empty() {
        let data = marked_dataset(12);
        let cfg = TrainConfig {
            rnn_units: 4,
            attr_rnn_units: 2,
            head_dim: 4,
            ..Default::default()
        };
        for kind in [ModelKind::Tsb, ModelKind::Etsb] {
            let model = AnyModel::new(kind, &data, &cfg, &mut seeded_rng(7));
            assert!(model.predict_probs(&data, &[]).is_empty());
            assert!(model.predict_probs_direct(&data, &[]).is_empty());
            assert!(model.predict(&data, &[]).is_empty());
        }
    }

    /// Regression: a hand-built dataset carrying a zero-length sequence
    /// (the normal encoder always emits at least one pad step) must
    /// predict — as if the value had been encoded as the empty string —
    /// instead of tripping the `SeqBatch` positive-length assert.
    #[test]
    fn predict_probs_tolerates_zero_length_sequences() {
        let mut data = marked_dataset(12);
        // Same cell twice: once with the encoder's pad-step encoding of
        // "" and once force-emptied; the two must score identically.
        data.sequences[0] = vec![0];
        data.sequences[1] = Vec::new();
        data.attr_ids[1] = data.attr_ids[0];
        data.length_norms[1] = data.length_norms[0];
        let cfg = TrainConfig {
            rnn_units: 4,
            attr_rnn_units: 2,
            head_dim: 4,
            ..Default::default()
        };
        for kind in [ModelKind::Tsb, ModelKind::Etsb] {
            let model = AnyModel::new(kind, &data, &cfg, &mut seeded_rng(8));
            let cells: Vec<usize> = (0..data.n_cells()).collect();
            let probs = model.predict_probs_direct(&data, &cells);
            assert_eq!(probs.len(), data.n_cells());
            assert_eq!(
                probs[0].to_bits(),
                probs[1].to_bits(),
                "{kind:?}: empty sequence must score exactly like a pad step"
            );
        }
    }

    /// The shared LRU changes how much work is done, never the bits:
    /// warm-cache results equal cold-cache results equal the uncached
    /// path, and hits are actually recorded.
    #[test]
    fn cached_predictions_are_bitwise_identical() {
        use crate::cache::PredictCache;
        let data = marked_dataset(30);
        let cfg = TrainConfig {
            rnn_units: 4,
            attr_rnn_units: 2,
            head_dim: 4,
            ..Default::default()
        };
        let cells: Vec<usize> = (0..data.n_cells()).collect();
        for kind in [ModelKind::Tsb, ModelKind::Etsb] {
            let model = AnyModel::new(kind, &data, &cfg, &mut seeded_rng(11));
            let plain = model.predict_probs(&data, &cells);
            let mut cache = PredictCache::new(1024);
            let cold = model.predict_probs_cached(&data, &cells, &mut cache);
            let warm = model.predict_probs_cached(&data, &cells, &mut cache);
            assert_eq!(plain, cold, "{kind:?}: cold cache changed bits");
            assert_eq!(plain, warm, "{kind:?}: warm cache changed bits");
            let stats = cache.stats();
            assert!(stats.hits > 0, "{kind:?}: second pass should hit");
            assert!(stats.len <= 1024);
        }
    }
}
