//! The §5.2 training protocol: mini-batches of a quarter of the trainset,
//! RMSprop on binary cross-entropy for 120 epochs, a checkpoint callback
//! keeping the weights of the epoch with the lowest *training* loss, and
//! the accuracy histories behind the paper's Figures 6 and 7.

use crate::config::TrainConfig;
use crate::encode::EncodedDataset;
use crate::model::AnyModel;
use etsb_nn::{Optimizer, Rmsprop};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Per-epoch training history.
#[derive(Clone, Debug, Serialize)]
pub struct History {
    /// Mean batch loss per epoch.
    pub train_loss: Vec<f32>,
    /// Trainset accuracy per epoch (evaluation mode). Empty when
    /// [`TrainConfig::track_train_acc`] is off.
    pub train_acc: Vec<f32>,
    /// Testset accuracy at each entry of `eval_epochs` (on the curve
    /// subsample when configured). Entries exist only when the test/curve
    /// set is non-empty — never NaN.
    pub test_acc: Vec<f32>,
    /// Epochs at which `test_acc` was measured, ascending. Always
    /// includes `best_epoch` when any accuracy could be measured.
    pub eval_epochs: Vec<usize>,
    /// Epoch whose weights were checkpointed (lowest train loss).
    pub best_epoch: usize,
    /// Wall-clock time of the training work only: shuffling, batch
    /// forward/backward, optimizer steps and checkpointing. Excludes
    /// every mid-training accuracy evaluation (`track_train_acc`,
    /// `eval_every` curve passes, the post-loop best-epoch backfill), so
    /// Table-5 timings measure training, not curve plotting.
    pub train_duration: Duration,
}

impl History {
    /// Test accuracy at the selected (best) epoch, if it was measured.
    pub fn test_acc_at_best(&self) -> Option<f32> {
        self.eval_epochs
            .iter()
            .position(|&e| e == self.best_epoch)
            .map(|i| self.test_acc[i])
    }
}

/// Train `model` on `train_cells`, tracking accuracy on `test_cells`.
/// On return the model holds the best-train-loss weights.
pub fn train_model(
    model: &mut AnyModel,
    data: &EncodedDataset,
    train_cells: &[usize],
    test_cells: &[usize],
    cfg: &TrainConfig,
    seed: u64,
) -> History {
    assert!(!train_cells.is_empty(), "train_model: empty trainset");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut opt = Rmsprop::new(cfg.learning_rate);

    // §5.2: "a model batch size of a quarter of the trainset".
    let batch_size = (train_cells.len() / cfg.batch_divisor.max(1)).max(1);

    // Fixed subsample for the learning curve (the final metrics in the
    // pipeline always use the full testset).
    let curve_cells: Vec<usize> =
        if cfg.curve_subsample > 0 && test_cells.len() > cfg.curve_subsample {
            let mut shuffled = test_cells.to_vec();
            shuffled.shuffle(&mut rng);
            shuffled.truncate(cfg.curve_subsample);
            shuffled
        } else {
            test_cells.to_vec()
        };

    let mut order = train_cells.to_vec();
    let mut history = History {
        train_loss: Vec::with_capacity(cfg.epochs),
        train_acc: Vec::with_capacity(cfg.epochs),
        test_acc: Vec::new(),
        eval_epochs: Vec::new(),
        best_epoch: 0,
        train_duration: Duration::ZERO,
    };
    let mut best_loss = f32::INFINITY;
    let mut best_state = model.clone_state();
    let mut grads = model.grad_buffer();

    let _train_span = etsb_obs::obs_span!(
        "train",
        "epochs" => cfg.epochs,
        "train_cells" => train_cells.len(),
        "batch_size" => batch_size,
    );
    for epoch in 0..cfg.epochs {
        let epoch_span = etsb_obs::obs_span!("epoch", "epoch" => epoch);
        // Training-only clock: everything up to the checkpoint decision
        // counts; the accuracy evaluations below do not.
        let train_start = Instant::now();
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut cells_seen = 0usize;
        for batch in order.chunks(batch_size) {
            grads.zero();
            // Weight each batch loss by its cell count: the trailing batch
            // may be short when the trainset is not divisible by the batch
            // size, and the epoch loss is the mean over *cells*, not over
            // batches.
            epoch_loss += model.train_batch(data, batch, &mut grads) * batch.len() as f32;
            cells_seen += batch.len();
            if etsb_obs::enabled() {
                etsb_obs::gauge("grad_global_norm", grads.global_norm());
            }
            let _opt_span = etsb_obs::span("optimizer");
            opt.step(&mut model.params_mut(), &grads);
        }
        epoch_loss /= cells_seen.max(1) as f32;
        history.train_loss.push(epoch_loss);
        if etsb_obs::enabled() {
            etsb_obs::gauge("train_loss", f64::from(epoch_loss));
        }

        // The paper's callback: keep the weights of the best train loss.
        if epoch_loss < best_loss {
            best_loss = epoch_loss;
            best_state = model.clone_state();
            history.best_epoch = epoch;
            etsb_obs::obs_event!(
                "checkpoint",
                "epoch" => epoch,
                "loss" => f64::from(epoch_loss),
            );
        }
        let epoch_elapsed = train_start.elapsed();
        history.train_duration += epoch_elapsed;
        if etsb_obs::registry::metrics_enabled() {
            let registry = etsb_obs::registry::global();
            registry.counter("train_epochs_total").inc();
            registry
                .histogram("train_epoch_ns")
                .record_ns(u64::try_from(epoch_elapsed.as_nanos()).unwrap_or(u64::MAX));
        }

        if cfg.track_train_acc {
            let _eval_span = etsb_obs::span("eval_train_acc");
            if let Some(acc) = accuracy(model, data, train_cells) {
                history.train_acc.push(acc);
            }
        }
        if epoch % cfg.eval_every.max(1) == 0 || epoch + 1 == cfg.epochs {
            let _eval_span = etsb_obs::span("eval_curve");
            if let Some(acc) = accuracy(model, data, &curve_cells) {
                history.eval_epochs.push(epoch);
                history.test_acc.push(acc);
            }
        }
        drop(epoch_span);
    }

    let restore_start = Instant::now();
    model.load_state(&best_state);
    history.train_duration += restore_start.elapsed();
    // The best epoch may fall between eval points; measure it now on the
    // restored weights so `test_acc_at_best` always has an answer. This is
    // curve backfill, not training: it stays off the training clock.
    if !history.eval_epochs.contains(&history.best_epoch) {
        let _eval_span = etsb_obs::span("eval_backfill");
        if let Some(acc) = accuracy(model, data, &curve_cells) {
            let pos = history
                .eval_epochs
                .partition_point(|&e| e < history.best_epoch);
            history.eval_epochs.insert(pos, history.best_epoch);
            history.test_acc.insert(pos, acc);
        }
    }
    history
}

/// Evaluation-mode accuracy over a cell set; `None` when `cells` is empty
/// (there is nothing to measure).
pub fn accuracy(model: &AnyModel, data: &EncodedDataset, cells: &[usize]) -> Option<f32> {
    if cells.is_empty() {
        return None;
    }
    let preds = model.predict(data, cells);
    let correct = preds
        .iter()
        .zip(cells)
        .filter(|(p, &c)| **p == data.labels[c])
        .count();
    Some(correct as f32 / cells.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelKind;
    use crate::model::test_support::marked_dataset;
    use etsb_tensor::init::seeded_rng;

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 25,
            rnn_units: 8,
            attr_rnn_units: 3,
            head_dim: 8,
            length_dense_dim: 4,
            learning_rate: 3e-3,
            curve_subsample: 0,
            eval_every: 5,
            ..Default::default()
        }
    }

    #[test]
    fn training_learns_the_marker() {
        let data = marked_dataset(60);
        let cfg = quick_cfg();
        let mut rng = seeded_rng(1);
        let mut model = AnyModel::new(ModelKind::Tsb, &data, &cfg, &mut rng);
        let train: Vec<usize> = (0..40).collect();
        let test: Vec<usize> = (40..data.n_cells()).collect();
        let history = train_model(&mut model, &data, &train, &test, &cfg, 7);
        assert_eq!(history.train_loss.len(), 25);
        // Loss must come down substantially on this trivially separable task.
        assert!(
            history.train_loss.last().unwrap() < &(history.train_loss[0] * 0.7),
            "loss did not fall: {:?}",
            (history.train_loss.first(), history.train_loss.last())
        );
        // Best-epoch weights are restored: train accuracy is high.
        assert!(accuracy(&model, &data, &train).unwrap() > 0.85);
        // Empty cell sets have no accuracy.
        assert_eq!(accuracy(&model, &data, &[]), None);
    }

    #[test]
    fn history_shapes_and_best_epoch() {
        let data = marked_dataset(40);
        let cfg = quick_cfg();
        let mut rng = seeded_rng(2);
        let mut model = AnyModel::new(ModelKind::Etsb, &data, &cfg, &mut rng);
        let train: Vec<usize> = (0..30).collect();
        let test: Vec<usize> = (30..data.n_cells()).collect();
        let history = train_model(&mut model, &data, &train, &test, &cfg, 8);
        assert_eq!(history.train_acc.len(), cfg.epochs);
        assert_eq!(history.eval_epochs.len(), history.test_acc.len());
        assert!(history.best_epoch < cfg.epochs);
        // eval_every = 5 → epochs 0,5,10,15,20,24, plus the best epoch if
        // it fell between eval points; the list stays sorted and unique.
        for e in [0, 5, 10, 15, 20, 24] {
            assert!(history.eval_epochs.contains(&e), "missing epoch {e}");
        }
        assert!(history.eval_epochs.windows(2).all(|w| w[0] < w[1]));
        // The best epoch is always measured, so this never comes back None.
        assert!(history.test_acc_at_best().is_some());
        let best = history
            .train_loss
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        assert_eq!(history.train_loss[history.best_epoch], best);
    }

    #[test]
    fn track_train_acc_off_skips_train_curve() {
        let data = marked_dataset(30);
        let mut cfg = quick_cfg();
        cfg.epochs = 4;
        cfg.track_train_acc = false;
        let mut rng = seeded_rng(6);
        let mut model = AnyModel::new(ModelKind::Tsb, &data, &cfg, &mut rng);
        let train: Vec<usize> = (0..20).collect();
        let test: Vec<usize> = (20..data.n_cells()).collect();
        let history = train_model(&mut model, &data, &train, &test, &cfg, 13);
        assert!(history.train_acc.is_empty());
        assert_eq!(history.train_loss.len(), 4);
        assert!(!history.test_acc.is_empty());
    }

    #[test]
    fn empty_testset_yields_no_eval_entries() {
        let data = marked_dataset(30);
        let mut cfg = quick_cfg();
        cfg.epochs = 3;
        let mut rng = seeded_rng(7);
        let mut model = AnyModel::new(ModelKind::Tsb, &data, &cfg, &mut rng);
        let train: Vec<usize> = (0..data.n_cells()).collect();
        let history = train_model(&mut model, &data, &train, &[], &cfg, 14);
        // No test cells → no curve entries, and crucially no NaN padding.
        assert!(history.test_acc.is_empty());
        assert!(history.eval_epochs.is_empty());
        assert!(history.test_acc.iter().all(|a| a.is_finite()));
        assert_eq!(history.test_acc_at_best(), None);
    }

    #[test]
    fn curve_subsample_caps_eval_cost() {
        let data = marked_dataset(60);
        let mut cfg = quick_cfg();
        cfg.epochs = 3;
        cfg.curve_subsample = 10;
        let mut rng = seeded_rng(3);
        let mut model = AnyModel::new(ModelKind::Tsb, &data, &cfg, &mut rng);
        let train: Vec<usize> = (0..20).collect();
        let test: Vec<usize> = (20..data.n_cells()).collect();
        // Just exercising the subsample path; accuracy is still in [0, 1].
        let history = train_model(&mut model, &data, &train, &test, &cfg, 9);
        assert!(history.test_acc.iter().all(|&a| (0.0..=1.0).contains(&a)));
    }

    /// The epoch loss is the mean over *cells*, not over batches: with a
    /// trainset not divisible by the batch size, the short trailing batch
    /// must contribute proportionally to its cell count. A twin model
    /// stepping through the same shuffled chunks reproduces the recorded
    /// epoch loss bit for bit from the cell-weighted definition.
    #[test]
    fn epoch_loss_is_cell_weighted() {
        let data = marked_dataset(30);
        let mut cfg = quick_cfg();
        cfg.epochs = 1;
        // 10 training cells, batch size 10/3 = 3 → chunks of 3, 3, 3, 1.
        cfg.batch_divisor = 3;
        let train: Vec<usize> = (0..10).collect();
        let seed = 21;

        let mut rng = seeded_rng(4);
        let mut model = AnyModel::new(ModelKind::Tsb, &data, &cfg, &mut rng);
        let history = train_model(&mut model, &data, &train, &[], &cfg, seed);

        // Replay the epoch by hand on an identically-seeded twin.
        let mut rng = seeded_rng(4);
        let mut twin = AnyModel::new(ModelKind::Tsb, &data, &cfg, &mut rng);
        let mut shuffle_rng = StdRng::seed_from_u64(seed);
        let mut order = train.clone();
        order.shuffle(&mut shuffle_rng);
        let mut opt = Rmsprop::new(cfg.learning_rate);
        let mut grads = twin.grad_buffer();
        let (mut weighted, mut cells) = (0.0_f32, 0usize);
        let batch_size = train.len() / cfg.batch_divisor;
        let mut batch_lens = Vec::new();
        for batch in order.chunks(batch_size) {
            grads.zero();
            weighted += twin.train_batch(&data, batch, &mut grads) * batch.len() as f32;
            cells += batch.len();
            opt.step(&mut twin.params_mut(), &grads);
            batch_lens.push(batch.len());
        }
        assert_eq!(batch_lens, [3, 3, 3, 1], "expected a short trailing batch");
        let expected = weighted / cells as f32;
        assert_eq!(
            history.train_loss[0].to_bits(),
            expected.to_bits(),
            "epoch loss is not the cell-weighted mean: {} vs {}",
            history.train_loss[0],
            expected
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data = marked_dataset(30);
        let cfg = quick_cfg();
        let run = |seed| {
            let mut rng = seeded_rng(5);
            let mut model = AnyModel::new(ModelKind::Tsb, &data, &cfg, &mut rng);
            let train: Vec<usize> = (0..20).collect();
            let test: Vec<usize> = (20..data.n_cells()).collect();
            train_model(&mut model, &data, &train, &test, &cfg, seed).train_loss
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
