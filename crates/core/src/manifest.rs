//! Run manifests: recorded provenance for reproducible sweeps.
//!
//! A [`RunManifest`] captures everything needed to re-run an experiment
//! invocation exactly — seed, full [`ExperimentConfig`], resolved worker
//! count, crate version, compiled features and the datasets (with cell
//! counts) it ran over. Bench bins write one next to each
//! `results_*.csv`; the CLI exposes it via `--manifest`. The JSON shape
//! is validated by the `trace_lint` bin in `etsb-obs` against
//! [`etsb_obs::MANIFEST_REQUIRED_KEYS`].

use crate::config::ExperimentConfig;
use etsb_obs::json::Value;

/// Shape facts for one dataset covered by a run.
#[derive(Clone, Debug)]
pub struct DatasetInfo {
    /// Dataset display name (e.g. `hospital`).
    pub name: String,
    /// Tuple (row) count.
    pub rows: usize,
    /// Attribute (column) count.
    pub cols: usize,
    /// Total cell count (`rows * cols`).
    pub cells: usize,
}

impl DatasetInfo {
    /// Info from a name and a `(rows, cols)` table shape.
    pub fn from_shape(name: &str, shape: (usize, usize)) -> DatasetInfo {
        DatasetInfo {
            name: name.to_string(),
            rows: shape.0,
            cols: shape.1,
            cells: shape.0 * shape.1,
        }
    }

    fn to_json_value(&self) -> Value {
        Value::obj([
            ("name".to_string(), Value::from(self.name.as_str())),
            ("rows".to_string(), Value::from(self.rows)),
            ("cols".to_string(), Value::from(self.cols)),
            ("cells".to_string(), Value::from(self.cells)),
        ])
    }
}

/// Compiled feature flags that affect numerics or diagnostics, as
/// recorded in manifests and per-response serve provenance.
pub fn compiled_features() -> Vec<String> {
    let mut features = Vec::new();
    if etsb_tensor::sanitize::enabled() {
        features.push("sanitize".to_string());
    }
    features
}

/// Provenance record for one experiment invocation.
#[derive(Clone, Debug)]
pub struct RunManifest {
    /// Base seed (repetition `i` uses `seed + i`).
    pub seed: u64,
    /// Number of repetitions.
    pub runs: usize,
    /// The full experiment configuration.
    pub config: ExperimentConfig,
    /// Resolved worker configuration (`ETSB_WORKERS` / override /
    /// available parallelism) at manifest creation time.
    pub workers: usize,
    /// Workspace crate version.
    pub version: String,
    /// Compiled feature flags that affect numerics or diagnostics.
    pub features: Vec<String>,
    /// Datasets the invocation runs over.
    pub datasets: Vec<DatasetInfo>,
    /// Rows per streaming chunk (`None` = in-memory path). Recorded so a
    /// result produced via `detect --chunk-rows` is distinguishable even
    /// though the bits are identical.
    pub chunk_rows: Option<usize>,
}

impl RunManifest {
    /// Build a manifest for `runs` repetitions of `config` over
    /// `datasets`, capturing worker count, version and features from the
    /// running process.
    pub fn new(config: &ExperimentConfig, runs: usize, datasets: Vec<DatasetInfo>) -> RunManifest {
        let features = compiled_features();
        RunManifest {
            seed: config.seed,
            runs,
            config: config.clone(),
            workers: etsb_nn::parallel::resolved_workers(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            features,
            datasets,
            chunk_rows: None,
        }
    }

    /// Record the streaming chunk size used for emission (0 is treated as
    /// the in-memory path and leaves the manifest unchanged).
    pub fn with_chunk_rows(mut self, chunk_rows: usize) -> RunManifest {
        self.chunk_rows = (chunk_rows > 0).then_some(chunk_rows);
        self
    }

    /// The manifest as a JSON value (stable, alphabetical key order).
    pub fn to_json_value(&self) -> Value {
        let train = &self.config.train;
        let train_json = Value::obj([
            ("epochs".to_string(), Value::from(train.epochs)),
            (
                "batch_divisor".to_string(),
                Value::from(train.batch_divisor),
            ),
            (
                "learning_rate".to_string(),
                Value::from(f64::from(train.learning_rate)),
            ),
            ("rnn_units".to_string(), Value::from(train.rnn_units)),
            (
                "attr_rnn_units".to_string(),
                Value::from(train.attr_rnn_units),
            ),
            ("head_dim".to_string(), Value::from(train.head_dim)),
            (
                "length_dense_dim".to_string(),
                Value::from(train.length_dense_dim),
            ),
            (
                "embed_dim".to_string(),
                match train.embed_dim {
                    Some(d) => Value::from(d),
                    None => Value::Null,
                },
            ),
            ("eval_every".to_string(), Value::from(train.eval_every)),
            (
                "curve_subsample".to_string(),
                Value::from(train.curve_subsample),
            ),
            ("cell".to_string(), Value::from(train.cell.name())),
            (
                "track_train_acc".to_string(),
                Value::from(train.track_train_acc),
            ),
        ]);
        let config_json = Value::obj([
            ("model".to_string(), Value::from(self.config.model.name())),
            (
                "sampler".to_string(),
                Value::from(self.config.sampler.name()),
            ),
            (
                "n_label_tuples".to_string(),
                Value::from(self.config.n_label_tuples),
            ),
            ("train".to_string(), train_json),
            ("seed".to_string(), Value::from(self.config.seed)),
        ]);
        let mut fields = vec![
            ("seed".to_string(), Value::from(self.seed)),
            ("runs".to_string(), Value::from(self.runs)),
            ("config".to_string(), config_json),
            ("workers".to_string(), Value::from(self.workers)),
            ("version".to_string(), Value::from(self.version.as_str())),
            (
                "features".to_string(),
                Value::Arr(
                    self.features
                        .iter()
                        .map(|f| Value::from(f.as_str()))
                        .collect(),
                ),
            ),
            (
                "datasets".to_string(),
                Value::Arr(
                    self.datasets
                        .iter()
                        .map(DatasetInfo::to_json_value)
                        .collect(),
                ),
            ),
        ];
        if let Some(chunk_rows) = self.chunk_rows {
            fields.push(("chunk_rows".to_string(), Value::from(chunk_rows)));
        }
        Value::obj(fields)
    }

    /// The manifest as a JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Write the manifest to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }

    /// The conventional manifest path for a results CSV: `results.csv`
    /// → `results.manifest.json` (non-`.csv` paths just gain the
    /// suffix).
    pub fn sidecar_path(csv_path: &str) -> String {
        let stem = csv_path.strip_suffix(".csv").unwrap_or(csv_path);
        format!("{stem}.manifest.json")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_obs::json;

    fn sample() -> RunManifest {
        RunManifest::new(
            &ExperimentConfig::default(),
            10,
            vec![DatasetInfo::from_shape("hospital", (1000, 20))],
        )
    }

    #[test]
    fn manifest_carries_every_required_key() {
        let parsed = json::parse(&sample().to_json()).expect("manifest JSON parses");
        for key in etsb_obs::MANIFEST_REQUIRED_KEYS {
            assert!(parsed.get(key).is_some(), "missing required key {key}");
        }
        let datasets = match parsed.get("datasets") {
            Some(json::Value::Arr(items)) => items,
            other => panic!("datasets not an array: {other:?}"),
        };
        assert_eq!(datasets.len(), 1);
        assert_eq!(
            datasets[0].get("cells").and_then(json::Value::as_f64),
            Some(20_000.0)
        );
        assert_eq!(
            parsed
                .get("config")
                .and_then(|c| c.get("model"))
                .and_then(json::Value::as_str),
            Some("ETSB-RNN")
        );
        assert!(parsed
            .get("workers")
            .and_then(json::Value::as_f64)
            .is_some_and(|w| w >= 1.0));
    }

    #[test]
    fn chunk_rows_is_recorded_only_for_streaming_runs() {
        let legacy = json::parse(&sample().to_json()).expect("parses");
        assert!(legacy.get("chunk_rows").is_none());
        let legacy_zero = json::parse(&sample().with_chunk_rows(0).to_json()).expect("parses");
        assert!(legacy_zero.get("chunk_rows").is_none());
        let streamed = json::parse(&sample().with_chunk_rows(512).to_json()).expect("parses");
        assert_eq!(
            streamed.get("chunk_rows").and_then(json::Value::as_f64),
            Some(512.0)
        );
        // Required keys unaffected either way.
        for key in etsb_obs::MANIFEST_REQUIRED_KEYS {
            assert!(streamed.get(key).is_some(), "missing required key {key}");
        }
    }

    #[test]
    fn sidecar_path_replaces_csv_suffix() {
        assert_eq!(
            RunManifest::sidecar_path("out/results_table3.csv"),
            "out/results_table3.manifest.json"
        );
        assert_eq!(RunManifest::sidecar_path("plain"), "plain.manifest.json");
    }
}
