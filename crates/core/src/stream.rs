//! Chunk-at-a-time streaming detection with O(chunk) memory.
//!
//! [`stream_predict`] drives a [`FrameScan`] through the frozen-dict
//! encoder and [`AnyModel::predict_probs_cached_with`], handing each
//! chunk's probabilities to a caller-supplied sink as soon as they are
//! computed — nothing table-sized is ever resident. Because the batched
//! evaluation paths are row-independent (a cell's probability does not
//! depend on which other cells share its forward pass), chunk boundaries
//! are just batch boundaries: for any chunk size, worker count and
//! [`KernelPolicy`] arm the emitted probabilities are bitwise identical
//! to one whole-table `predict_probs_with` call over the in-memory
//! encoding. See DESIGN.md §16 for the full equivalence argument.
//!
//! All chunk-sized buffers (the merged cells, the encoded sequences, the
//! prediction vectors) are recycled between chunks, so steady-state
//! streaming performs a bounded number of allocations per chunk and peak
//! memory is O(`chunk_rows` × attrs), independent of the row count.

use crate::cache::PredictCache;
use crate::encode::{encode_frozen_into, EncodedDataset};
use crate::eval::Metrics;
use crate::model::AnyModel;
use etsb_table::scan::{ChunkedFrame, FrameScan, RowSource};
use etsb_table::{AttrIndex, CharIndex, TableError};
use etsb_tensor::KernelPolicy;

/// Error from a streaming detection pass.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamError {
    /// The row source failed or produced malformed data.
    Table(TableError),
    /// The sink failed (e.g. an I/O error while writing results).
    Sink(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Table(e) => write!(f, "stream source: {e}"),
            StreamError::Sink(msg) => write!(f, "stream sink: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<TableError> for StreamError {
    fn from(e: TableError) -> Self {
        StreamError::Table(e)
    }
}

/// One detected chunk, borrowed from the streaming loop's reusable
/// buffers: the merged cells (with global `tuple_id`s), the model's
/// error probabilities and the thresholded predictions, all aligned
/// with `frame.cells()`.
#[derive(Debug)]
pub struct StreamChunk<'a> {
    /// The chunk's merged cells.
    pub frame: &'a ChunkedFrame,
    /// Error probability per cell (class-1 softmax output).
    pub probs: &'a [f32],
    /// `probs >= 0.5`, the same threshold as [`AnyModel::predict`].
    pub preds: &'a [bool],
}

/// Running confusion-matrix accumulator for chunked evaluation.
///
/// [`Metrics`] ratios are pure functions of the four integer counts, so
/// accumulating per chunk and finishing through [`Metrics::from_counts`]
/// is bitwise identical to one [`Metrics::from_predictions`] call over
/// the whole cell stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamMetrics {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl StreamMetrics {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one prediction against its ground-truth label.
    pub fn observe(&mut self, predicted: bool, label: bool) {
        match (predicted, label) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Number of observations so far.
    pub fn n(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Finish into [`Metrics`]; `None` when nothing was observed.
    pub fn finish(&self) -> Option<Metrics> {
        if self.n() == 0 {
            None
        } else {
            Some(Metrics::from_counts(self.tp, self.fp, self.fn_, self.tn))
        }
    }
}

/// Totals and peak-memory proxies from one [`stream_predict`] pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamOutcome {
    /// Rows scanned.
    pub n_rows: usize,
    /// Cells predicted (`rows × attrs`).
    pub n_cells: usize,
    /// Cells whose probability crossed the 0.5 threshold.
    pub flagged: usize,
    /// Peak resident bytes of the merged-chunk buffer.
    pub peak_chunk_bytes: usize,
    /// Peak resident bytes of the encoded-chunk buffer.
    pub peak_encoded_bytes: usize,
}

/// Reusable frozen-dict encoder: refills one [`EncodedDataset`] from a
/// chunk, recycling the per-cell sequence buffers.
struct ChunkEncoder {
    data: EncodedDataset,
    spare: Vec<Vec<usize>>,
}

impl ChunkEncoder {
    fn new(char_index: &CharIndex, attr_index: &AttrIndex) -> Self {
        Self {
            data: EncodedDataset::empty_with_dicts(char_index.clone(), attr_index.clone()),
            spare: Vec::new(),
        }
    }

    fn refill(&mut self, chunk: &ChunkedFrame, max_len: &[usize]) {
        let data = &mut self.data;
        self.spare.append(&mut data.sequences);
        data.attr_ids.clear();
        data.length_norms.clear();
        data.labels.clear();
        for cell in chunk.cells() {
            let mut seq = self.spare.pop().unwrap_or_default();
            let norm = encode_frozen_into(
                &data.char_index,
                &cell.value_x,
                max_len[cell.attr],
                &mut seq,
            );
            data.sequences.push(seq);
            data.attr_ids.push(cell.attr);
            data.length_norms.push(norm);
            data.labels.push(cell.label);
        }
        data.n_tuples = chunk.n_tuples();
        data.n_attrs = chunk.n_attrs();
    }

    /// Resident heap footprint of the encoded buffers in bytes.
    fn resident_bytes(&self) -> usize {
        let live: usize = self
            .data
            .sequences
            .iter()
            .chain(self.spare.iter())
            .map(|s| s.capacity() * std::mem::size_of::<usize>())
            .sum();
        live + self.data.attr_ids.capacity() * std::mem::size_of::<usize>()
            + self.data.length_norms.capacity() * std::mem::size_of::<f32>()
            + self.data.labels.capacity()
    }
}

/// Stream a scan through the model: encode each chunk against the frozen
/// dictionaries, predict, and hand the results to `sink` in input order.
///
/// `char_index`/`attr_index` are the *frozen* dictionaries (from a
/// trained detector, a persisted vocabulary, or a [`scan_stats`] pass —
/// see [`etsb_table::scan::scan_stats`]); the scan's per-attribute
/// maxima supply the global `length_norm` denominators. The source's
/// columns must match the attribute dictionary by name and order.
///
/// `cache` composes exactly as in the serving path: a disabled cache
/// keeps the per-chunk memo only, an enabled one dedups representatives
/// across chunk boundaries. Either way the bits are identical — the
/// cache only changes how much work is done.
pub fn stream_predict<S: RowSource>(
    model: &AnyModel,
    char_index: &CharIndex,
    attr_index: &AttrIndex,
    scan: &mut FrameScan<S>,
    cache: &mut PredictCache,
    policy: KernelPolicy,
    mut sink: impl FnMut(&StreamChunk<'_>) -> Result<(), String>,
) -> Result<StreamOutcome, StreamError> {
    for (c, col) in scan.columns().iter().enumerate() {
        if c >= attr_index.len() || attr_index.name_of(c) != col {
            return Err(StreamError::Table(TableError::UnknownColumn(col.clone())));
        }
    }
    if scan.columns().len() != attr_index.len() {
        return Err(StreamError::Table(TableError::UnknownColumn(format!(
            "expected {} attributes, source has {}",
            attr_index.len(),
            scan.columns().len()
        ))));
    }

    let metrics_on = etsb_obs::registry::metrics_enabled();
    let registry = etsb_obs::registry::global();
    let chunk_gauge = metrics_on.then(|| registry.gauge("etsb_stream_chunk_bytes"));
    let encoded_gauge = metrics_on.then(|| registry.gauge("etsb_stream_encoded_bytes"));
    let rows_counter = metrics_on.then(|| registry.counter("etsb_stream_rows"));
    let cells_counter = metrics_on.then(|| registry.counter("etsb_stream_cells"));

    let mut encoder = ChunkEncoder::new(char_index, attr_index);
    let mut chunk = ChunkedFrame::new();
    let mut cell_ids: Vec<usize> = Vec::new();
    let mut preds: Vec<bool> = Vec::new();
    let mut outcome = StreamOutcome::default();

    while scan.next_chunk(&mut chunk)? {
        encoder.refill(&chunk, scan.max_len());
        cell_ids.clear();
        cell_ids.extend(0..encoder.data.n_cells());
        let probs = model.predict_probs_cached_with(&encoder.data, &cell_ids, cache, policy);
        preds.clear();
        preds.extend(probs.iter().map(|&p| p >= 0.5));

        outcome.n_rows += chunk.n_tuples();
        outcome.n_cells += probs.len();
        outcome.flagged += preds.iter().filter(|&&p| p).count();
        outcome.peak_chunk_bytes = outcome.peak_chunk_bytes.max(chunk.resident_bytes());
        outcome.peak_encoded_bytes = outcome.peak_encoded_bytes.max(encoder.resident_bytes());

        if let Some(g) = &chunk_gauge {
            g.set(outcome.peak_chunk_bytes as f64);
        }
        if let Some(g) = &encoded_gauge {
            g.set(outcome.peak_encoded_bytes as f64);
        }
        if let Some(c) = &rows_counter {
            c.add(chunk.n_tuples() as u64);
        }
        if let Some(c) = &cells_counter {
            c.add(probs.len() as u64);
        }

        sink(&StreamChunk {
            frame: &chunk,
            probs: &probs,
            preds: &preds,
        })
        .map_err(StreamError::Sink)?;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelKind, TrainConfig};
    use etsb_table::scan::{scan_stats, TableSource};
    use etsb_table::{CellFrame, Table};
    use etsb_tensor::init::seeded_rng;

    fn pair() -> (Table, Table) {
        let mut dirty = Table::with_columns(&["a", "b"]);
        let mut clean = Table::with_columns(&["a", "b"]);
        for i in 0..13 {
            let v = format!("v{i}");
            let w = format!("w{}", i % 4);
            let dirty_v = if i % 5 == 0 {
                format!("{v}x")
            } else {
                v.clone()
            };
            dirty.push_row_strs(&[&dirty_v, &w]);
            clean.push_row_strs(&[&v, &w]);
        }
        (dirty, clean)
    }

    fn small_cfg() -> TrainConfig {
        TrainConfig {
            rnn_units: 4,
            attr_rnn_units: 2,
            head_dim: 4,
            length_dense_dim: 2,
            embed_dim: Some(3),
            ..TrainConfig::default()
        }
    }

    #[test]
    fn streaming_probs_match_the_in_memory_path_bitwise() {
        let (d, c) = pair();
        let frame = CellFrame::merge(&d, &c).unwrap();
        let data = EncodedDataset::from_frame(&frame);
        let model = AnyModel::new(ModelKind::Etsb, &data, &small_cfg(), &mut seeded_rng(7));
        let all: Vec<usize> = (0..data.n_cells()).collect();
        let reference = model.predict_probs_with(&data, &all, KernelPolicy::Exact);

        for chunk_rows in [1usize, 3, 5, 100] {
            let mut source = TableSource::pair(&d, &c).unwrap();
            let (stats, _) = scan_stats(&mut source).unwrap();
            let mut scan = FrameScan::new(source, stats.max_len, chunk_rows);
            let mut streamed: Vec<f32> = Vec::new();
            let outcome = stream_predict(
                &model,
                &data.char_index,
                &data.attr_index,
                &mut scan,
                &mut PredictCache::disabled(),
                KernelPolicy::Exact,
                |chunk| {
                    streamed.extend_from_slice(chunk.probs);
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(outcome.n_cells, reference.len());
            assert_eq!(outcome.n_rows, 13);
            assert!(outcome.peak_chunk_bytes > 0 && outcome.peak_encoded_bytes > 0);
            let reference_bits: Vec<u32> = reference.iter().map(|p| p.to_bits()).collect();
            let streamed_bits: Vec<u32> = streamed.iter().map(|p| p.to_bits()).collect();
            assert_eq!(streamed_bits, reference_bits, "chunk_rows={chunk_rows}");
        }
    }

    #[test]
    fn shared_cache_across_chunks_keeps_bits() {
        let (d, c) = pair();
        let frame = CellFrame::merge(&d, &c).unwrap();
        let data = EncodedDataset::from_frame(&frame);
        let model = AnyModel::new(ModelKind::Etsb, &data, &small_cfg(), &mut seeded_rng(7));
        let all: Vec<usize> = (0..data.n_cells()).collect();
        let reference = model.predict_probs_with(&data, &all, KernelPolicy::Exact);

        let mut source = TableSource::pair(&d, &c).unwrap();
        let (stats, _) = scan_stats(&mut source).unwrap();
        let mut scan = FrameScan::new(source, stats.max_len, 4);
        let mut cache = PredictCache::new(1024);
        let mut streamed: Vec<f32> = Vec::new();
        stream_predict(
            &model,
            &data.char_index,
            &data.attr_index,
            &mut scan,
            &mut cache,
            KernelPolicy::Exact,
            |chunk| {
                streamed.extend_from_slice(chunk.probs);
                Ok(())
            },
        )
        .unwrap();
        assert!(cache.stats().hits + cache.stats().misses > 0);
        let reference_bits: Vec<u32> = reference.iter().map(|p| p.to_bits()).collect();
        let streamed_bits: Vec<u32> = streamed.iter().map(|p| p.to_bits()).collect();
        assert_eq!(streamed_bits, reference_bits);
    }

    #[test]
    fn chunked_metrics_match_whole_table_metrics() {
        let (d, c) = pair();
        let frame = CellFrame::merge(&d, &c).unwrap();
        let data = EncodedDataset::from_frame(&frame);
        let model = AnyModel::new(ModelKind::Etsb, &data, &small_cfg(), &mut seeded_rng(3));
        let all: Vec<usize> = (0..data.n_cells()).collect();
        let whole_preds = model.predict_with(&data, &all, KernelPolicy::Exact);
        let whole = Metrics::from_predictions(&whole_preds, &data.labels);

        let mut source = TableSource::pair(&d, &c).unwrap();
        let (stats, _) = scan_stats(&mut source).unwrap();
        let mut scan = FrameScan::new(source, stats.max_len, 3);
        let mut acc = StreamMetrics::new();
        stream_predict(
            &model,
            &data.char_index,
            &data.attr_index,
            &mut scan,
            &mut PredictCache::disabled(),
            KernelPolicy::Exact,
            |chunk| {
                for (cell, &p) in chunk.frame.cells().iter().zip(chunk.preds) {
                    acc.observe(p, cell.label);
                }
                Ok(())
            },
        )
        .unwrap();
        let chunked = acc.finish().expect("non-empty");
        assert_eq!(
            (whole.tp, whole.fp, whole.fn_, whole.tn),
            (chunked.tp, chunked.fp, chunked.fn_, chunked.tn)
        );
        assert_eq!(whole.f1.to_bits(), chunked.f1.to_bits());
        assert_eq!(whole.precision.to_bits(), chunked.precision.to_bits());
        assert_eq!(whole.recall.to_bits(), chunked.recall.to_bits());
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let (d, c) = pair();
        let frame = CellFrame::merge(&d, &c).unwrap();
        let data = EncodedDataset::from_frame(&frame);
        let model = AnyModel::new(ModelKind::Etsb, &data, &small_cfg(), &mut seeded_rng(3));
        let other = Table::with_columns(&["zz", "b"]);
        let mut scan = FrameScan::new(TableSource::dirty_only(&other), vec![0, 0], 2);
        let err = stream_predict(
            &model,
            &data.char_index,
            &data.attr_index,
            &mut scan,
            &mut PredictCache::disabled(),
            KernelPolicy::Exact,
            |_| Ok(()),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            StreamError::Table(TableError::UnknownColumn(_))
        ));
    }

    #[test]
    fn sink_errors_propagate() {
        let (d, c) = pair();
        let frame = CellFrame::merge(&d, &c).unwrap();
        let data = EncodedDataset::from_frame(&frame);
        let model = AnyModel::new(ModelKind::Etsb, &data, &small_cfg(), &mut seeded_rng(3));
        let mut source = TableSource::pair(&d, &c).unwrap();
        let (stats, _) = scan_stats(&mut source).unwrap();
        let mut scan = FrameScan::new(source, stats.max_len, 4);
        let err = stream_predict(
            &model,
            &data.char_index,
            &data.attr_index,
            &mut scan,
            &mut PredictCache::disabled(),
            KernelPolicy::Exact,
            |_| Err("disk full".into()),
        )
        .unwrap_err();
        assert_eq!(err, StreamError::Sink("disk full".into()));
    }
}
