//! Experiment and training configuration.

use serde::{Deserialize, Serialize};

/// Which neural architecture to train (§4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Two-Stacked Bidirectional RNN: character input only.
    Tsb,
    /// Enriched TSB-RNN: characters + attribute metadata + length_norm.
    Etsb,
}

impl ModelKind {
    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Tsb => "TSB-RNN",
            ModelKind::Etsb => "ETSB-RNN",
        }
    }
}

/// Which recurrent cell powers the bidirectional stacks. The paper uses
/// vanilla RNNs and argues (§2) they train faster than LSTM/GRU at equal
/// quality for this task; the alternatives exist to test that claim
/// (`ablation_cells` bench).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellKind {
    /// Vanilla (Elman) RNN — the paper's choice.
    Vanilla,
    /// Long Short-Term Memory cell.
    Lstm,
    /// Gated Recurrent Unit cell.
    Gru,
}

impl CellKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Vanilla => "RNN",
            CellKind::Lstm => "LSTM",
            CellKind::Gru => "GRU",
        }
    }
}

/// Which trainset-selection algorithm to use (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplerKind {
    /// Algorithm 1: uniform random tuples.
    Random,
    /// Algorithm 2: Raha's cluster-coverage sampling.
    Raha,
    /// Algorithm 3: the paper's novel diversity-greedy sampler.
    DiverSet,
}

impl SamplerKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SamplerKind::Random => "RandomSet",
            SamplerKind::Raha => "RahaSet",
            SamplerKind::DiverSet => "DiverSet",
        }
    }
}

/// Neural-network training hyper-parameters (§5.2 defaults).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Training epochs (paper: 120).
    pub epochs: usize,
    /// Batch size = trainset size / `batch_divisor` (paper: 4).
    pub batch_divisor: usize,
    /// RMSprop learning rate.
    pub learning_rate: f32,
    /// Units per direction of the character BiRNN (paper: 64).
    pub rnn_units: usize,
    /// Units per direction of the attribute BiRNN (paper: 8).
    pub attr_rnn_units: usize,
    /// Width of the shared hidden head (paper: 32).
    pub head_dim: usize,
    /// Width of the length_norm dense path (paper: 64).
    pub length_dense_dim: usize,
    /// Character-embedding dimension; `None` = value-dictionary size, as
    /// §3.1 describes.
    pub embed_dim: Option<usize>,
    /// Evaluate test accuracy every `eval_every` epochs for the learning
    /// curves (1 reproduces the paper's figures exactly; larger values
    /// speed up the run).
    pub eval_every: usize,
    /// Cap on test cells used for per-epoch curve tracking (the final
    /// metrics always use the full testset). `0` disables the cap.
    pub curve_subsample: usize,
    /// Recurrent cell for both bidirectional stacks (paper: vanilla).
    pub cell: CellKind,
    /// Record full-trainset accuracy after every epoch (needed for the
    /// paper's Figure 7 curves, but a pure evaluation cost — benches and
    /// throughput-sensitive runs turn it off).
    #[serde(default = "default_track_train_acc")]
    pub track_train_acc: bool,
}

fn default_track_train_acc() -> bool {
    true
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 120,
            batch_divisor: 4,
            learning_rate: 1e-3,
            rnn_units: 64,
            attr_rnn_units: 8,
            head_dim: 32,
            length_dense_dim: 64,
            embed_dim: None,
            eval_every: 1,
            curve_subsample: 2000,
            cell: CellKind::Vanilla,
            track_train_acc: default_track_train_acc(),
        }
    }
}

/// Full experiment configuration: model, sampler, labeling budget and
/// training hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Architecture to train.
    pub model: ModelKind,
    /// Trainset-selection algorithm.
    pub sampler: SamplerKind,
    /// Tuples the user labels (paper: 20).
    pub n_label_tuples: usize,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// Base RNG seed; repetition `i` of a repeated run uses `seed + i`.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::Etsb,
            sampler: SamplerKind::DiverSet,
            n_label_tuples: 20,
            train: TrainConfig::default(),
            seed: 42,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.n_label_tuples, 20);
        assert_eq!(cfg.train.epochs, 120);
        assert_eq!(cfg.train.batch_divisor, 4);
        assert_eq!(cfg.train.rnn_units, 64);
        assert_eq!(cfg.train.attr_rnn_units, 8);
        assert_eq!(cfg.train.head_dim, 32);
        assert_eq!(cfg.train.length_dense_dim, 64);
        assert_eq!(cfg.train.cell, CellKind::Vanilla);
    }

    #[test]
    fn names() {
        assert_eq!(ModelKind::Tsb.name(), "TSB-RNN");
        assert_eq!(ModelKind::Etsb.name(), "ETSB-RNN");
        assert_eq!(SamplerKind::DiverSet.name(), "DiverSet");
    }
}
