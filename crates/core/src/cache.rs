//! Bounded, deterministic prediction cache shared across `predict_probs`
//! calls — the per-call memo of [`crate::model::AnyModel::predict_probs`]
//! promoted to a resident structure a long-lived service can reuse.
//!
//! The cache is an LRU keyed by the owned form of [`crate::model::memo_key`]:
//! `(attribute id, length_norm bits, character sequence)` — every input the
//! models read for a cell. Because evaluation-mode inference is
//! row-independent (the head's BatchNorm uses running statistics) and the
//! batched sequence path is bitwise identical to the per-sample path, a
//! cached probability is bit-for-bit the value a fresh forward pass would
//! produce, so serving from the cache never changes an output.
//!
//! Determinism of the *cache itself*: recency is tracked in a
//! [`BTreeMap`] keyed by a monotone access tick, so eviction order is a
//! pure function of the operation sequence — no hash-iteration order
//! leaks into behavior (lookups still go through a [`HashMap`], which is
//! fine: only iteration order is nondeterministic, never `get`).

use std::collections::{BTreeMap, HashMap};

/// Owned cache key: `(attribute id, length_norm bits, sequence)`. See
/// [`crate::model::owned_memo_key`].
pub type PredictKey = (usize, u32, Vec<usize>);

/// Counters describing cache behavior since construction, plus the
/// current occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to honor the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Configured capacity (0 = caching disabled).
    pub capacity: usize,
}

/// Bounded LRU over per-cell error probabilities.
///
/// Capacity 0 disables the cache: every probe misses and inserts are
/// dropped, which callers can detect cheaply via [`PredictCache::enabled`]
/// to skip key construction entirely.
#[derive(Debug)]
pub struct PredictCache {
    capacity: usize,
    /// Monotone access counter; each get-hit or insert advances it.
    tick: u64,
    /// Key → (probability, tick of last access).
    map: HashMap<PredictKey, (f32, u64)>,
    /// Tick of last access → key; the first entry is always the
    /// least-recently-used resident and therefore the eviction victim.
    recency: BTreeMap<u64, PredictKey>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PredictCache {
    /// A cache bounded to at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// A capacity-0 cache: probes always miss, inserts are no-ops. The
    /// plain `predict_probs` path uses this to share one code path with
    /// the cached one at zero cost.
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Whether the cache can ever hold an entry. When `false`, callers
    /// may skip building owned keys altogether.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Look up a probability, refreshing the entry's recency on a hit.
    pub fn get(&mut self, key: &PredictKey) -> Option<f32> {
        if self.capacity == 0 {
            self.misses += 1;
            return None;
        }
        match self.map.get_mut(key) {
            Some((prob, tick)) => {
                let prob = *prob;
                let old = *tick;
                self.tick += 1;
                *tick = self.tick;
                if let Some(k) = self.recency.remove(&old) {
                    self.recency.insert(self.tick, k);
                }
                self.hits += 1;
                Some(prob)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a probability, evicting the least-recently
    /// used entries if the capacity bound would be exceeded.
    pub fn insert(&mut self, key: PredictKey, prob: f32) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some((old_prob, old_tick)) = self.map.get_mut(&key) {
            let old = *old_tick;
            *old_prob = prob;
            *old_tick = tick;
            if let Some(k) = self.recency.remove(&old) {
                self.recency.insert(tick, k);
            }
            return;
        }
        self.recency.insert(tick, key.clone());
        self.map.insert(key, (prob, tick));
        while self.map.len() > self.capacity {
            // pop_first: strictly the smallest tick — the LRU entry.
            if let Some((_, victim)) = self.recency.pop_first() {
                self.map.remove(&victim);
                self.evictions += 1;
            } else {
                break;
            }
        }
    }

    /// Number of resident entries (always `<=` capacity).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hit/miss/eviction counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: usize) -> PredictKey {
        (n, 0, vec![n])
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut c = PredictCache::new(4);
        assert_eq!(c.get(&key(1)), None);
        c.insert(key(1), 0.25);
        assert_eq!(c.get(&key(1)), Some(0.25));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.len), (1, 1, 0, 1));
    }

    #[test]
    fn capacity_bound_holds_under_churn() {
        let mut c = PredictCache::new(3);
        for i in 0..100 {
            c.insert(key(i), i as f32);
            assert!(c.len() <= 3, "cache exceeded bound at insert {i}");
        }
        assert_eq!(c.stats().evictions, 97);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut c = PredictCache::new(2);
        c.insert(key(1), 0.1);
        c.insert(key(2), 0.2);
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(c.get(&key(1)), Some(0.1));
        c.insert(key(3), 0.3);
        assert_eq!(c.get(&key(2)), None, "LRU entry should have been evicted");
        assert_eq!(c.get(&key(1)), Some(0.1));
        assert_eq!(c.get(&key(3)), Some(0.3));
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = PredictCache::new(2);
        c.insert(key(1), 0.1);
        c.insert(key(2), 0.2);
        c.insert(key(1), 0.9); // refresh: 2 is now LRU
        c.insert(key(3), 0.3);
        assert_eq!(c.get(&key(1)), Some(0.9));
        assert_eq!(c.get(&key(2)), None);
    }

    #[test]
    fn disabled_cache_never_stores() {
        let mut c = PredictCache::disabled();
        assert!(!c.enabled());
        c.insert(key(1), 0.5);
        assert_eq!(c.get(&key(1)), None);
        assert!(c.is_empty());
        assert_eq!(c.stats().capacity, 0);
    }
}
