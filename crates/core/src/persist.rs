//! Trained-detector persistence: save a trained model together with its
//! dictionaries, reload it later, and apply it to *new dirty data with no
//! ground truth* — the deployment step after the paper's train/evaluate
//! protocol.
//!
//! Binary format (all integers little-endian):
//!
//! ```text
//! magic "ETSBDET1"
//! u8  model kind (0 = TSB, 1 = ETSB)
//! u8  cell kind (0 = vanilla, 1 = LSTM, 2 = GRU)
//! u32 rnn_units | u32 attr_rnn_units | u32 head_dim | u32 length_dense_dim
//! u8  embed_dim override present | u32 embed_dim
//! u32 n_chars   | n_chars x u32 codepoint      (value dictionary, index order)
//! u32 n_attrs   | n_attrs x (u32 len, utf-8)   (attribute dictionary)
//! u64 weights byte length | weight snapshot (etsb-nn checkpoint format)
//! ```

use crate::config::{CellKind, ModelKind, TrainConfig};
use crate::encode::EncodedDataset;
use crate::model::AnyModel;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use etsb_table::{AttrIndex, CharIndex, Table, TableError};
use etsb_tensor::init::seeded_rng;

const MAGIC: &[u8; 8] = b"ETSBDET1";

/// Error loading a saved detector.
#[derive(Debug)]
pub enum PersistError {
    /// Not an ETSB detector file (bad magic) or truncated.
    Malformed(String),
    /// Weight snapshot does not fit the declared architecture.
    Weights(etsb_nn::CheckpointError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Malformed(msg) => write!(f, "malformed detector file: {msg}"),
            PersistError::Weights(e) => write!(f, "weight restore failed: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// A reloaded detector: the model plus everything needed to encode new
/// data the way it was trained.
#[derive(Debug)]
pub struct LoadedDetector {
    /// The restored model.
    pub model: AnyModel,
    /// Architecture kind.
    pub kind: ModelKind,
    /// The hyper-parameters the model was built with (training-schedule
    /// fields carry defaults; only architecture fields are persisted).
    pub train: TrainConfig,
    /// The value dictionary from training time.
    pub char_index: CharIndex,
    /// The attribute dictionary from training time.
    pub attr_index: AttrIndex,
}

impl LoadedDetector {
    /// Apply the detector to a new dirty table (no ground truth): encodes
    /// with the *training-time* dictionaries (unseen characters map to
    /// the pad/unknown index) and returns one error flag per cell in
    /// row-major order.
    ///
    /// The table's columns must match the training schema by name.
    pub fn apply(&self, dirty: &Table) -> Result<Vec<bool>, TableError> {
        let data = EncodedDataset::from_dirty_table(dirty, &self.char_index, &self.attr_index)?;
        let cells: Vec<usize> = (0..data.n_cells()).collect();
        Ok(self.model.predict(&data, &cells))
    }

    /// Per-cell error probabilities on a new dirty table.
    pub fn apply_probs(&self, dirty: &Table) -> Result<Vec<f32>, TableError> {
        let data = EncodedDataset::from_dirty_table(dirty, &self.char_index, &self.attr_index)?;
        let cells: Vec<usize> = (0..data.n_cells()).collect();
        Ok(self.model.predict_probs(&data, &cells))
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Serialize a trained model with the dictionaries it was trained on.
pub fn save_detector(
    model: &AnyModel,
    kind: ModelKind,
    cfg: &TrainConfig,
    data: &EncodedDataset,
) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u8(match kind {
        ModelKind::Tsb => 0,
        ModelKind::Etsb => 1,
    });
    buf.put_u8(match cfg.cell {
        CellKind::Vanilla => 0,
        CellKind::Lstm => 1,
        CellKind::Gru => 2,
    });
    buf.put_u32_le(cfg.rnn_units as u32);
    buf.put_u32_le(cfg.attr_rnn_units as u32);
    buf.put_u32_le(cfg.head_dim as u32);
    buf.put_u32_le(cfg.length_dense_dim as u32);
    buf.put_u8(u8::from(cfg.embed_dim.is_some()));
    buf.put_u32_le(cfg.embed_dim.unwrap_or(0) as u32);

    let entries = data.char_index.entries();
    buf.put_u32_le(entries.len() as u32);
    for (ch, _) in entries {
        buf.put_u32_le(ch as u32);
    }
    let names = data.attr_index.names();
    buf.put_u32_le(names.len() as u32);
    for name in names {
        put_string(&mut buf, name);
    }

    let weights = model.snapshot();
    buf.put_u64_le(weights.len() as u64);
    buf.put_slice(&weights);
    buf.to_vec()
}

fn need(buf: &Bytes, n: usize, what: &str) -> Result<(), PersistError> {
    if buf.remaining() < n {
        Err(PersistError::Malformed(format!(
            "truncated while reading {what}"
        )))
    } else {
        Ok(())
    }
}

/// Load a detector produced by [`save_detector`].
pub fn load_detector(bytes: &[u8]) -> Result<LoadedDetector, PersistError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    need(&buf, 8, "magic")?;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(PersistError::Malformed("bad magic".into()));
    }
    need(&buf, 2 + 16 + 5, "header")?;
    let kind = match buf.get_u8() {
        0 => ModelKind::Tsb,
        1 => ModelKind::Etsb,
        other => {
            return Err(PersistError::Malformed(format!(
                "unknown model kind {other}"
            )))
        }
    };
    let cell = match buf.get_u8() {
        0 => CellKind::Vanilla,
        1 => CellKind::Lstm,
        2 => CellKind::Gru,
        other => {
            return Err(PersistError::Malformed(format!(
                "unknown cell kind {other}"
            )))
        }
    };
    let mut train = TrainConfig {
        rnn_units: buf.get_u32_le() as usize,
        attr_rnn_units: buf.get_u32_le() as usize,
        head_dim: buf.get_u32_le() as usize,
        length_dense_dim: buf.get_u32_le() as usize,
        cell,
        ..TrainConfig::default()
    };
    let has_embed = buf.get_u8() != 0;
    let embed = buf.get_u32_le() as usize;
    train.embed_dim = has_embed.then_some(embed);

    need(&buf, 4, "char count")?;
    let n_chars = buf.get_u32_le() as usize;
    need(&buf, n_chars * 4, "char table")?;
    let mut entries = Vec::with_capacity(n_chars);
    for i in 0..n_chars {
        let cp = buf.get_u32_le();
        let ch = char::from_u32(cp)
            .ok_or_else(|| PersistError::Malformed(format!("invalid codepoint {cp}")))?;
        entries.push((ch, i + 1));
    }
    let char_index = CharIndex::from_entries(entries);

    need(&buf, 4, "attr count")?;
    let n_attrs = buf.get_u32_le() as usize;
    let mut names = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        need(&buf, 4, "attr name length")?;
        let len = buf.get_u32_le() as usize;
        need(&buf, len, "attr name")?;
        let mut raw = vec![0u8; len];
        buf.copy_to_slice(&mut raw);
        let name = String::from_utf8(raw)
            .map_err(|_| PersistError::Malformed("non-utf8 attribute name".into()))?;
        names.push(name);
    }
    let attr_index = AttrIndex::from_names(names);

    need(&buf, 8, "weights length")?;
    let w_len = buf.get_u64_le() as usize;
    need(&buf, w_len, "weights")?;
    let weights = buf.copy_to_bytes(w_len);

    // Build a model of the right shape, then restore the weights. The
    // RNG seed is irrelevant: every weight is overwritten.
    let dims = EncodedDataset::empty_with_dicts(char_index.clone(), attr_index.clone());
    let mut model = AnyModel::new(kind, &dims, &train, &mut seeded_rng(0));
    model.restore(&weights).map_err(PersistError::Weights)?;

    Ok(LoadedDetector {
        model,
        kind,
        train,
        char_index,
        attr_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::{marked_dataset, overfit};

    fn small_cfg() -> TrainConfig {
        TrainConfig {
            rnn_units: 6,
            attr_rnn_units: 3,
            head_dim: 6,
            length_dense_dim: 4,
            embed_dim: Some(8),
            ..Default::default()
        }
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let data = marked_dataset(30);
        let cfg = small_cfg();
        let mut model = AnyModel::new(ModelKind::Etsb, &data, &cfg, &mut seeded_rng(1));
        let _ = overfit(&mut model, &data, 40);

        let cells: Vec<usize> = (0..data.n_cells()).collect();
        let before = model.predict_probs(&data, &cells);

        let saved = save_detector(&model, ModelKind::Etsb, &cfg, &data);
        let loaded = load_detector(&saved).unwrap();
        assert_eq!(loaded.kind, ModelKind::Etsb);
        let after = loaded.model.predict_probs(&data, &cells);
        assert_eq!(before, after);
    }

    #[test]
    fn loaded_detector_applies_to_fresh_dirty_data() {
        let data = marked_dataset(30);
        let cfg = small_cfg();
        let mut model = AnyModel::new(ModelKind::Tsb, &data, &cfg, &mut seeded_rng(2));
        let _ = overfit(&mut model, &data, 60);
        let saved = save_detector(&model, ModelKind::Tsb, &cfg, &data);
        let loaded = load_detector(&saved).unwrap();

        // New dirty-only table in the same schema: errors carry '!'.
        let mut fresh = etsb_table::Table::with_columns(&["v", "w"]);
        fresh.push_row_strs(&["val1", "11"]);
        fresh.push_row_strs(&["val2!", "12"]);
        let flags = loaded.apply(&fresh).unwrap();
        assert_eq!(flags.len(), 4);
        assert!(flags[2], "the marked value should be flagged");
        assert!(!flags[0]);
    }

    /// Regression: applying a detector to a table with zero rows must
    /// return an empty mask, not panic in the batch-packing kernels.
    #[test]
    fn apply_to_empty_table_returns_empty_mask() {
        let data = marked_dataset(12);
        let cfg = small_cfg();
        let model = AnyModel::new(ModelKind::Etsb, &data, &cfg, &mut seeded_rng(9));
        let saved = save_detector(&model, ModelKind::Etsb, &cfg, &data);
        let loaded = load_detector(&saved).unwrap();
        let empty = etsb_table::Table::with_columns(&["v", "w"]);
        assert!(loaded.apply(&empty).unwrap().is_empty());
        assert!(loaded.apply_probs(&empty).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            load_detector(b"NOTADETECTOR"),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let data = marked_dataset(12);
        let cfg = small_cfg();
        let model = AnyModel::new(ModelKind::Tsb, &data, &cfg, &mut seeded_rng(3));
        let saved = save_detector(&model, ModelKind::Tsb, &cfg, &data);
        // Chop the buffer at several points; every prefix must fail
        // cleanly rather than panic.
        for cut in [0, 4, 9, 12, 30, saved.len() / 2, saved.len() - 3] {
            assert!(
                load_detector(&saved[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly loaded"
            );
        }
    }

    #[test]
    fn schema_mismatch_is_reported_on_apply() {
        let data = marked_dataset(12);
        let cfg = small_cfg();
        let model = AnyModel::new(ModelKind::Tsb, &data, &cfg, &mut seeded_rng(4));
        let saved = save_detector(&model, ModelKind::Tsb, &cfg, &data);
        let loaded = load_detector(&saved).unwrap();
        let mut wrong = etsb_table::Table::with_columns(&["different", "schema"]);
        wrong.push_row_strs(&["a", "b"]);
        assert!(loaded.apply(&wrong).is_err());
    }
}
