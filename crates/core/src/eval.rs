//! Evaluation: precision / recall / F1 per run, and the mean ± standard
//! deviation aggregation used in the paper's Tables 3 and 4.

use serde::Serialize;

/// Binary-classification metrics over cell predictions (`true` = error).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Metrics {
    /// True positives, false positives, false negatives, true negatives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
    /// `tp / (tp + fp)` (1 when no positives were predicted and none exist).
    pub precision: f64,
    /// `tp / (tp + fn)`.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Fraction of correct predictions.
    pub accuracy: f64,
}

impl Metrics {
    /// Compute metrics from aligned prediction / label slices.
    ///
    /// # Panics
    /// If the slices differ in length or are empty.
    pub fn from_predictions(preds: &[bool], labels: &[bool]) -> Self {
        assert_eq!(
            preds.len(),
            labels.len(),
            "Metrics: {} preds vs {} labels",
            preds.len(),
            labels.len()
        );
        assert!(!preds.is_empty(), "Metrics: empty evaluation");
        let (mut tp, mut fp, mut fn_, mut tn) = (0usize, 0usize, 0usize, 0usize);
        for (&p, &l) in preds.iter().zip(labels) {
            match (p, l) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => tn += 1,
            }
        }
        Self::from_counts(tp, fp, fn_, tn)
    }

    /// Compute metrics from a raw confusion matrix.
    ///
    /// The ratios are derived from the integer counts alone, so chunked
    /// evaluation that accumulates `tp/fp/fn/tn` per chunk and finishes
    /// through this constructor is bitwise identical to a single
    /// [`Metrics::from_predictions`] call over the whole cell stream.
    ///
    /// # Panics
    /// If all four counts are zero (an empty evaluation).
    pub fn from_counts(tp: usize, fp: usize, fn_: usize, tn: usize) -> Self {
        let total = tp + fp + fn_ + tn;
        assert!(total > 0, "Metrics: empty evaluation");
        let precision = if tp + fp == 0 {
            if tp + fn_ == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            1.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        let accuracy = (tp + tn) as f64 / total as f64;
        Self {
            tp,
            fp,
            fn_,
            tn,
            precision,
            recall,
            f1,
            accuracy,
        }
    }
}

/// Error: a mean/std aggregation was asked for zero samples.
///
/// Returned instead of silently producing `NaN` summaries, which used to
/// flow into reports and CSVs unnoticed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmptySample;

impl std::fmt::Display for EmptySample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("cannot summarize an empty sample (no runs to aggregate)")
    }
}

impl std::error::Error for EmptySample {}

/// Mean and (population) standard deviation of a sequence of values —
/// the paper reports both for its 10-repetition protocol.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Number of values aggregated (always at least 1).
    pub n: usize,
}

impl Summary {
    /// Summarize a slice of values; an empty slice is an [`EmptySample`]
    /// error, never a `NaN` summary.
    pub fn of(values: &[f64]) -> Result<Self, EmptySample> {
        let n = values.len();
        if n == 0 {
            return Err(EmptySample);
        }
        // Sequential f64 accumulation over an already-ordered slice: the
        // reduction order is pinned by construction, not by a kernel.
        // etsb: allow(float-reduce-order)
        let mean = values.iter().sum::<f64>() / n as f64;
        // etsb: allow(float-reduce-order) -- same pinned sequential order.
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        Ok(Self {
            mean,
            std: var.sqrt(),
            n,
        })
    }

    /// Half-width of the 95% normal confidence interval of the mean
    /// (`1.96 · std / sqrt(n)`) — used for the paper's Figure 6/7 bands.
    pub fn ci95(&self) -> f64 {
        1.96 * self.std / (self.n.max(1) as f64).sqrt()
    }
}

/// Aggregate per-run metrics into (precision, recall, F1) summaries;
/// an empty run set is an [`EmptySample`] error.
pub fn aggregate(runs: &[Metrics]) -> Result<(Summary, Summary, Summary), EmptySample> {
    let p: Vec<f64> = runs.iter().map(|m| m.precision).collect();
    let r: Vec<f64> = runs.iter().map(|m| m.recall).collect();
    let f: Vec<f64> = runs.iter().map(|m| m.f1).collect();
    Ok((Summary::of(&p)?, Summary::of(&r)?, Summary::of(&f)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let m = Metrics::from_predictions(&[true, false, true], &[true, false, true]);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    fn known_confusion_matrix() {
        // tp=2, fp=1, fn=1, tn=1.
        let preds = [true, true, true, false, false];
        let labels = [true, true, false, true, false];
        let m = Metrics::from_predictions(&preds, &labels);
        assert_eq!((m.tp, m.fp, m.fn_, m.tn), (2, 1, 1, 1));
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.accuracy - 0.6).abs() < 1e-12);
    }

    #[test]
    fn all_negative_predictions_with_errors_present() {
        let m = Metrics::from_predictions(&[false, false], &[true, false]);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn no_errors_and_no_positive_predictions_is_perfect() {
        let m = Metrics::from_predictions(&[false, false], &[false, false]);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn from_counts_matches_from_predictions() {
        let preds = [true, true, true, false, false];
        let labels = [true, true, false, true, false];
        let whole = Metrics::from_predictions(&preds, &labels);
        let counted = Metrics::from_counts(whole.tp, whole.fp, whole.fn_, whole.tn);
        assert_eq!(whole.precision.to_bits(), counted.precision.to_bits());
        assert_eq!(whole.recall.to_bits(), counted.recall.to_bits());
        assert_eq!(whole.f1.to_bits(), counted.f1.to_bits());
        assert_eq!(whole.accuracy.to_bits(), counted.accuracy.to_bits());
    }

    #[test]
    #[should_panic(expected = "empty evaluation")]
    fn from_counts_rejects_empty() {
        let _ = Metrics::from_counts(0, 0, 0, 0);
    }

    #[test]
    fn summary_mean_std() {
        let s = Summary::of(&[0.8, 0.9, 1.0]).expect("non-empty");
        assert!((s.mean - 0.9).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 300.0).sqrt()).abs() < 1e-9);
        assert_eq!(s.n, 3);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn summary_empty_is_an_error_not_nan() {
        assert_eq!(Summary::of(&[]), Err(EmptySample));
        assert!(aggregate(&[]).is_err());
    }

    #[test]
    fn aggregate_three_ways() {
        let runs = vec![
            Metrics::from_predictions(&[true, false], &[true, false]),
            Metrics::from_predictions(&[false, false], &[true, false]),
        ];
        let (p, r, f) = aggregate(&runs).expect("non-empty");
        assert_eq!(p.n, 2);
        assert!((r.mean - 0.5).abs() < 1e-12);
        assert!(f.mean < 1.0);
    }
}
