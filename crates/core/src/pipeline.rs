//! End-to-end experiment runner: data preparation → trainset selection →
//! training → evaluation, with the paper's repeated-runs protocol.

use crate::config::ExperimentConfig;
use crate::encode::EncodedDataset;
use crate::eval::{aggregate, EmptySample, Metrics, Summary};
use crate::model::AnyModel;
use crate::sampling;
use crate::train::{train_model, History};
use etsb_table::{CellFrame, Table, TableError};
use etsb_tensor::init::seeded_rng;
use std::time::Duration;

/// Result of one experiment repetition.
#[derive(Debug)]
pub struct RunResult {
    /// Testset metrics at the checkpointed weights.
    pub metrics: Metrics,
    /// Per-epoch training history (Figures 6–7 material).
    pub history: History,
    /// Wall-clock time of the training work only (Table 5 material):
    /// shuffling, batch updates, optimizer steps and checkpointing.
    /// Mid-training curve evaluations (`eval_every` passes,
    /// `track_train_acc`) are excluded — see [`History::train_duration`].
    pub train_time: Duration,
    /// The labelled tuples the sampler selected.
    pub sample: Vec<usize>,
}

/// Result of `n` repetitions with different seeds.
#[derive(Debug)]
pub struct RepeatedResult {
    /// Per-repetition results.
    pub runs: Vec<RunResult>,
    /// Precision mean ± std across runs.
    pub precision: Summary,
    /// Recall mean ± std across runs.
    pub recall: Summary,
    /// F1 mean ± std across runs.
    pub f1: Summary,
    /// Training-time summary in seconds.
    pub train_secs: Summary,
}

/// Run one repetition on a dirty/clean table pair. `rep` offsets the
/// configured seed, implementing the paper's "validated the models 10
/// times" protocol (`seed + rep` per repetition).
pub fn run_once(
    dirty: &Table,
    clean: &Table,
    cfg: &ExperimentConfig,
    rep: u64,
) -> Result<RunResult, TableError> {
    let frame = CellFrame::merge(dirty, clean)?;
    Ok(run_once_on_frame(&frame, cfg, rep))
}

/// Like [`run_once`], for callers that already merged the frame.
pub fn run_once_on_frame(frame: &CellFrame, cfg: &ExperimentConfig, rep: u64) -> RunResult {
    let _rep_span = etsb_obs::obs_span!("repetition", "rep" => rep as i64);
    let seed = cfg.seed.wrapping_add(rep);
    let data = {
        let _span = etsb_obs::obs_span!(
            "data_prep",
            "tuples" => frame.n_tuples(),
            "attrs" => frame.n_attrs(),
        );
        EncodedDataset::from_frame(frame)
    };
    let sample = {
        let _span = etsb_obs::obs_span!(
            "sampling",
            "sampler" => cfg.sampler.name(),
            "budget" => cfg.n_label_tuples,
        );
        sampling::select(cfg.sampler, frame, cfg.n_label_tuples, seed)
    };
    run_with_sample(frame, &data, &sample, cfg, seed)
}

/// Lowest-level entry: run with a caller-supplied labelled-tuple set (the
/// ablation benches use this to isolate the sampler's contribution).
pub fn run_with_sample(
    frame: &CellFrame,
    data: &EncodedDataset,
    sample: &[usize],
    cfg: &ExperimentConfig,
    seed: u64,
) -> RunResult {
    let (train_cells, test_cells) = data.split_by_tuples(sample);
    let mut rng = seeded_rng(seed);
    let mut model = AnyModel::new(cfg.model, data, &cfg.train, &mut rng);

    let history = train_model(
        &mut model,
        data,
        &train_cells,
        &test_cells,
        &cfg.train,
        seed,
    );
    // Training time is accounted inside the loop itself, so mid-training
    // curve evaluations never inflate the Table-5 numbers.
    let train_time = history.train_duration;

    let _eval_span = etsb_obs::obs_span!("final_eval", "test_cells" => test_cells.len());
    let preds = model.predict(data, &test_cells);
    let labels = data.labels_of(&test_cells);
    let metrics = Metrics::from_predictions(&preds, &labels);
    if etsb_obs::enabled() {
        etsb_obs::gauge("precision", metrics.precision);
        etsb_obs::gauge("recall", metrics.recall);
        etsb_obs::gauge("f1", metrics.f1);
    }
    let _ = frame; // kept in the signature for symmetry / future use
    RunResult {
        metrics,
        history,
        train_time,
        sample: sample.to_vec(),
    }
}

/// Error from [`run_repeated`]: bad input tables, or zero repetitions.
#[derive(Debug)]
pub enum PipelineError {
    /// The dirty/clean tables could not be merged into a cell frame.
    Table(TableError),
    /// `n_runs == 0`: there are no results to aggregate.
    NoRuns(EmptySample),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Table(e) => write!(f, "pipeline: {e}"),
            PipelineError::NoRuns(e) => write!(f, "pipeline: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<TableError> for PipelineError {
    fn from(e: TableError) -> Self {
        PipelineError::Table(e)
    }
}

impl From<EmptySample> for PipelineError {
    fn from(e: EmptySample) -> Self {
        PipelineError::NoRuns(e)
    }
}

/// The paper's repeated protocol: `n_runs` repetitions with seeds
/// `cfg.seed .. cfg.seed + n_runs`, aggregated to mean ± std.
pub fn run_repeated(
    dirty: &Table,
    clean: &Table,
    cfg: &ExperimentConfig,
    n_runs: usize,
) -> Result<RepeatedResult, PipelineError> {
    let frame = CellFrame::merge(dirty, clean)?;
    let runs: Vec<RunResult> = (0..n_runs as u64)
        .map(|rep| run_once_on_frame(&frame, cfg, rep))
        .collect();
    let metrics: Vec<Metrics> = runs.iter().map(|r| r.metrics).collect();
    let (precision, recall, f1) = aggregate(&metrics)?;
    let secs: Vec<f64> = runs.iter().map(|r| r.train_time.as_secs_f64()).collect();
    Ok(RepeatedResult {
        runs,
        precision,
        recall,
        f1,
        train_secs: Summary::of(&secs)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelKind, SamplerKind, TrainConfig};

    /// A dataset whose errors carry an unmistakable marker, so even a
    /// short training run detects them.
    fn marked_pair(n: usize) -> (Table, Table) {
        let mut dirty = Table::with_columns(&["v", "w"]);
        let mut clean = Table::with_columns(&["v", "w"]);
        for i in 0..n {
            let v = format!("item{}", i % 6);
            let w = format!("{}", 100 + (i % 9));
            if i % 4 == 0 {
                dirty.push_row(vec![format!("{v}##"), w.clone()]);
            } else {
                dirty.push_row(vec![v.clone(), w.clone()]);
            }
            clean.push_row(vec![v, w]);
        }
        (dirty, clean)
    }

    fn quick_cfg() -> ExperimentConfig {
        ExperimentConfig {
            model: ModelKind::Tsb,
            sampler: SamplerKind::DiverSet,
            n_label_tuples: 12,
            train: TrainConfig {
                epochs: 30,
                rnn_units: 8,
                attr_rnn_units: 3,
                head_dim: 8,
                length_dense_dim: 4,
                learning_rate: 3e-3,
                eval_every: 10,
                curve_subsample: 50,
                ..Default::default()
            },
            seed: 5,
        }
    }

    #[test]
    fn end_to_end_detects_marked_errors() {
        let (dirty, clean) = marked_pair(80);
        let result = run_once(&dirty, &clean, &quick_cfg(), 0).unwrap();
        assert!(
            result.metrics.f1 > 0.8,
            "end-to-end F1 {:.2} too low (p={:.2}, r={:.2})",
            result.metrics.f1,
            result.metrics.precision,
            result.metrics.recall
        );
        assert_eq!(result.sample.len(), 12);
        assert!(result.train_time > Duration::ZERO);
    }

    #[test]
    fn repeated_runs_aggregate() {
        let (dirty, clean) = marked_pair(60);
        let mut cfg = quick_cfg();
        cfg.train.epochs = 12;
        let rep = run_repeated(&dirty, &clean, &cfg, 2).unwrap();
        assert_eq!(rep.runs.len(), 2);
        assert_eq!(rep.f1.n, 2);
        assert!(rep.f1.mean <= 1.0 && rep.f1.mean >= 0.0);
        assert!(rep.train_secs.mean > 0.0);
    }

    #[test]
    fn etsb_works_end_to_end_too() {
        let (dirty, clean) = marked_pair(60);
        let mut cfg = quick_cfg();
        cfg.model = ModelKind::Etsb;
        cfg.train.epochs = 20;
        let result = run_once(&dirty, &clean, &cfg, 0).unwrap();
        assert!(result.metrics.f1 > 0.6, "ETSB F1 {:.2}", result.metrics.f1);
    }

    #[test]
    fn shape_mismatch_propagates() {
        let (dirty, _) = marked_pair(10);
        let clean = Table::with_columns(&["v", "w"]);
        assert!(run_once(&dirty, &clean, &quick_cfg(), 0).is_err());
    }
}
