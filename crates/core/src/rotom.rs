//! A Rotom-style baseline (Miao et al., SIGMOD 2021): data augmentation
//! over the labelled cells feeding a lightweight classifier, plus the
//! self-training (`+SSL`) variant.
//!
//! The original Rotom meta-learns seq2seq augmentation policies over a
//! pretrained language model; that is far outside an offline Rust
//! workspace, so this substitution keeps the *shape* of the method — the
//! labelled set is expanded by label-preserving augmentation operators
//! and a classifier is trained on hashed character n-gram features — which
//! is the property the paper's comparison exercises (few labels + .
//! augmentation vs few labels + architecture). See DESIGN.md §5.

use crate::encode::EncodedDataset;
use etsb_raha::LogisticRegression;
use etsb_table::CellFrame;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Hashed character-trigram feature dimension.
const NGRAM_DIM: usize = 512;

/// Rotom-style detector configuration.
#[derive(Clone, Debug)]
pub struct RotomConfig {
    /// Augmented copies generated per labelled cell.
    pub augmentations_per_cell: usize,
    /// Run the self-training pass (`Rotom+SSL`).
    pub self_training: bool,
    /// Confidence bound for pseudo-labels in the SSL pass.
    pub ssl_confidence: f32,
}

impl Default for RotomConfig {
    fn default() -> Self {
        Self {
            augmentations_per_cell: 4,
            self_training: false,
            ssl_confidence: 0.95,
        }
    }
}

/// The Rotom-style baseline detector.
#[derive(Clone, Debug)]
pub struct RotomDetector {
    /// Configuration.
    pub config: RotomConfig,
}

impl RotomDetector {
    /// New detector.
    pub fn new(config: RotomConfig) -> Self {
        Self { config }
    }

    /// Detect errors: train on the cells of `labeled_tuples` (augmented),
    /// predict every cell. Returns predictions in `frame.cells()` order.
    pub fn detect(
        &self,
        frame: &CellFrame,
        data: &EncodedDataset,
        labeled_tuples: &[usize],
        seed: u64,
    ) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_attrs = data.n_attrs;
        let dim = NGRAM_DIM + n_attrs + 3;

        // Per-column vocabulary of shape-normalized trigrams observed in
        // the *clean* labelled values: the out-of-vocabulary fraction is
        // this substitution's stand-in for the pretrained language
        // model's "this string looks unusual" signal in the real Rotom.
        let mut clean_trigrams: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); n_attrs];
        for &t in labeled_tuples {
            for cell in frame.tuple(t) {
                if !cell.label {
                    clean_trigrams[cell.attr].extend(shape_trigrams(&cell.value_x));
                }
            }
        }

        let feat = |value: &str, attr: usize, length_norm: f32| {
            featurize(value, attr, length_norm, n_attrs, &clean_trigrams[attr])
        };

        // Assemble the augmented training set.
        let mut x: Vec<Vec<f32>> = Vec::new();
        let mut y: Vec<bool> = Vec::new();
        for &t in labeled_tuples {
            for cell in frame.tuple(t) {
                let label = cell.label;
                x.push(feat(&cell.value_x, cell.attr, cell.length_norm));
                y.push(label);
                for _ in 0..self.config.augmentations_per_cell {
                    let aug = augment(&cell.value_x, &mut rng);
                    x.push(feat(&aug, cell.attr, cell.length_norm));
                    y.push(label);
                }
            }
        }

        let mut clf = LogisticRegression::new(dim);
        clf.lr = 1.0;
        clf.iters = 800;
        clf.balance_classes = true;
        clf.fit(&x, &y);

        if self.config.self_training {
            // Pseudo-label confident unlabelled cells, retrain once.
            let mut in_labeled = vec![false; frame.n_tuples()];
            for &t in labeled_tuples {
                in_labeled[t] = true;
            }
            for cell in frame.cells() {
                if in_labeled[cell.tuple_id] {
                    continue;
                }
                let f = feat(&cell.value_x, cell.attr, cell.length_norm);
                let p = clf.predict_proba(&f);
                if p > self.config.ssl_confidence {
                    x.push(f);
                    y.push(true);
                } else if p < 1.0 - self.config.ssl_confidence {
                    x.push(f);
                    y.push(false);
                }
            }
            clf = LogisticRegression::new(dim);
            clf.lr = 1.0;
            clf.iters = 800;
            clf.balance_classes = true;
            clf.fit(&x, &y);
        }

        frame
            .cells()
            .iter()
            .map(|cell| clf.predict(&feat(&cell.value_x, cell.attr, cell.length_norm)))
            .collect()
    }
}

/// FNV-hash the shape-normalized trigrams of a value (digits collapse to
/// `d` so numeric columns do not look perpetually out-of-vocabulary).
fn shape_trigrams(value: &str) -> Vec<u64> {
    let padded: Vec<char> = std::iter::once('^')
        .chain(
            value
                .chars()
                .map(|c| if c.is_ascii_digit() { 'd' } else { c }),
        )
        .chain(std::iter::once('$'))
        .collect();
    padded
        .windows(3.min(padded.len()))
        .map(|win| {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &ch in win {
                h ^= ch as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        })
        .collect()
}

/// Hashed character-trigram features plus attribute one-hot, normalized
/// length, an emptiness flag and the out-of-vocabulary trigram fraction
/// against the column's clean labelled values.
fn featurize(
    value: &str,
    attr: usize,
    length_norm: f32,
    n_attrs: usize,
    clean_vocab: &BTreeSet<u64>,
) -> Vec<f32> {
    let mut out = vec![0.0f32; NGRAM_DIM + n_attrs + 3];
    let trigrams = shape_trigrams(value);
    let total = trigrams.len() as f32;
    let mut oov = 0.0f32;
    for h in &trigrams {
        out[(h % NGRAM_DIM as u64) as usize] += 1.0;
        if !clean_vocab.is_empty() && !clean_vocab.contains(h) {
            oov += 1.0;
        }
    }
    if total > 0.0 {
        for v in &mut out[..NGRAM_DIM] {
            *v /= total;
        }
    }
    out[NGRAM_DIM + attr] = 1.0;
    out[NGRAM_DIM + n_attrs] = length_norm;
    out[NGRAM_DIM + n_attrs + 1] = if value.is_empty() { 1.0 } else { 0.0 };
    out[NGRAM_DIM + n_attrs + 2] = if total > 0.0 { oov / total } else { 0.0 };
    out
}

/// Label-preserving augmentation: small perturbations that keep the
/// "shape" of the value (Rotom's invariance assumption).
fn augment(value: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = value.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    match rng.gen_range(0..3u8) {
        // Swap two adjacent characters.
        0 if chars.len() >= 2 => {
            let i = rng.gen_range(0..chars.len() - 1);
            let mut out = chars;
            out.swap(i, i + 1);
            out.into_iter().collect()
        }
        // Duplicate a character.
        1 => {
            let i = rng.gen_range(0..chars.len());
            let mut out = chars;
            out.insert(i, out[i]);
            out.into_iter().collect()
        }
        // Substitute a character with a same-class character.
        _ => {
            let i = rng.gen_range(0..chars.len());
            let mut out = chars;
            out[i] = if out[i].is_ascii_digit() {
                (b'0' + rng.gen_range(0..10u8)) as char
            } else if out[i].is_ascii_alphabetic() {
                (b'a' + rng.gen_range(0..26u8)) as char
            } else {
                out[i]
            };
            out.into_iter().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_table::Table;

    fn marked_pair(n: usize) -> CellFrame {
        let mut dirty = Table::with_columns(&["v"]);
        let mut clean = Table::with_columns(&["v"]);
        for i in 0..n {
            let v = format!("value{}", i % 8);
            if i % 4 == 0 {
                dirty.push_row(vec![format!("{v}@@")]);
            } else {
                dirty.push_row(vec![v.clone()]);
            }
            clean.push_row(vec![v]);
        }
        CellFrame::merge(&dirty, &clean).unwrap()
    }

    #[test]
    fn featurize_dimensions_and_attr_onehot() {
        let vocab = BTreeSet::new();
        let f = featurize("abc", 1, 0.5, 3, &vocab);
        assert_eq!(f.len(), NGRAM_DIM + 3 + 3);
        assert_eq!(f[NGRAM_DIM], 0.0);
        assert_eq!(f[NGRAM_DIM + 1], 1.0);
        assert_eq!(f[NGRAM_DIM + 3], 0.5);
        assert_eq!(f[NGRAM_DIM + 4], 0.0);
        // Empty vocabulary disables the OOV signal.
        assert_eq!(f[NGRAM_DIM + 5], 0.0);
    }

    #[test]
    fn featurize_empty_flag() {
        let vocab = BTreeSet::new();
        let f = featurize("", 0, 0.0, 1, &vocab);
        assert_eq!(f[NGRAM_DIM + 1 + 1], 1.0);
    }

    #[test]
    fn oov_fraction_separates_unseen_shapes() {
        let vocab: BTreeSet<u64> = shape_trigrams("heart failure").into_iter().collect();
        let clean = featurize("heart failure", 0, 1.0, 1, &vocab);
        let dirty = featurize("hexrt fxilure", 0, 1.0, 1, &vocab);
        let oov_idx = NGRAM_DIM + 1 + 2;
        assert_eq!(clean[oov_idx], 0.0);
        assert!(dirty[oov_idx] > 0.3, "oov fraction {}", dirty[oov_idx]);
        // Digits collapse: a different number is NOT out-of-vocabulary.
        let vocab_num: BTreeSet<u64> = shape_trigrams("55%").into_iter().collect();
        let other_num = featurize("83%", 0, 1.0, 1, &vocab_num);
        assert_eq!(other_num[oov_idx], 0.0);
    }

    #[test]
    fn augment_keeps_length_close() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let a = augment("hello42", &mut rng);
            assert!((a.chars().count() as i64 - 7).abs() <= 1, "{a}");
        }
    }

    #[test]
    fn detects_marked_errors() {
        let frame = marked_pair(120);
        let data = EncodedDataset::from_frame(&frame);
        let labeled: Vec<usize> = (0..24).collect();
        let det = RotomDetector::new(RotomConfig::default());
        let preds = det.detect(&frame, &data, &labeled, 3);
        let labels: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();
        let m = crate::eval::Metrics::from_predictions(&preds, &labels);
        assert!(m.f1 > 0.9, "Rotom baseline F1 {:.2}", m.f1);
    }

    #[test]
    fn ssl_variant_runs() {
        let frame = marked_pair(120);
        let data = EncodedDataset::from_frame(&frame);
        let labeled: Vec<usize> = (0..16).collect();
        let det = RotomDetector::new(RotomConfig {
            self_training: true,
            ..Default::default()
        });
        let preds = det.detect(&frame, &data, &labeled, 4);
        assert_eq!(preds.len(), frame.cells().len());
    }
}
