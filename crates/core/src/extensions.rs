//! The paper's §5.7 future-work directions, implemented:
//!
//! * [`fd_augmented`] — "our approach does not consider functional
//!   dependencies between different attributes": combine the model's
//!   predictions with approximate-FD violation signals (a 12-year-old
//!   with a 99,000 salary becomes detectable).
//! * [`duplicate_aware`] — "we should integrate a way to identify primary
//!   keys": detect a key-like column whose values group duplicate
//!   records from different sources (Flights), and flag cells that
//!   disagree with their group's majority — exactly the cross-record
//!   signal the character-level model cannot see.

use etsb_table::CellFrame;
use std::collections::{BTreeMap, HashSet};

/// OR-combine model predictions with approximate-FD violations
/// (discovered at `support`, e.g. 0.95). Raises recall on violated
/// attribute dependencies at a small precision cost.
pub fn fd_augmented(frame: &CellFrame, predictions: &[bool], support: f64) -> Vec<bool> {
    assert_eq!(
        predictions.len(),
        frame.cells().len(),
        "fd_augmented: prediction length"
    );
    use etsb_raha::strategies::Strategy as _;
    let violations = etsb_raha::strategies::FdViolation {
        min_support: support,
    }
    .run(frame);
    predictions
        .iter()
        .zip(&violations)
        .map(|(&p, &v)| p || v)
        .collect()
}

/// Identify the most key-like column: the column whose values form the
/// most groups of size ≥ 2 while staying far from constant — for Flights
/// this is the flight identifier shared by records from different
/// sources. Returns `None` when no column has meaningful grouping.
pub fn identify_record_key(frame: &CellFrame) -> Option<usize> {
    let n_tuples = frame.n_tuples();
    if n_tuples < 4 {
        return None;
    }
    // Candidate filter: high-cardinality columns whose duplicates cover
    // most of the table. Constant-ish or boolean-ish columns fail the
    // group-count test; true unique ids fail the coverage test.
    let mut candidates: Vec<usize> = Vec::new();
    for attr in 0..frame.n_attrs() {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for t in 0..n_tuples {
            let v = frame.tuple(t)[attr].value_x.as_str();
            if !v.is_empty() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let n_groups = counts.len();
        if n_groups < n_tuples / 20 || n_groups < 2 {
            continue;
        }
        let grouped: usize = counts.values().filter(|&&c| c >= 2).sum();
        if grouped < n_tuples / 2 {
            continue;
        }
        candidates.push(attr);
    }
    // Discriminate by *determination weighted by coverage*: grouping by
    // the real record key puts every record — including the corrupted
    // ones — into a group whose other columns are near-constant. An
    // incidental repeated column (the data source) covers everything but
    // mixes unrelated records (low agreement); a value column groups
    // consistently but its corrupted cells fall out of the groups (low
    // coverage). The product separates the true key from both.
    let mut best: Option<(usize, f64)> = None;
    for &attr in &candidates {
        let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for t in 0..n_tuples {
            let v = frame.tuple(t)[attr].value_x.as_str();
            if !v.is_empty() {
                groups.entry(v).or_default().push(t);
            }
        }
        let covered: usize = groups
            .values()
            .filter(|ts| ts.len() >= 2)
            .map(Vec::len)
            .sum();
        let coverage = covered as f64 / n_tuples as f64;
        let mut agreement_sum = 0.0f64;
        let mut agreement_n = 0usize;
        for tuples in groups.values().filter(|ts| ts.len() >= 2) {
            for other in 0..frame.n_attrs() {
                if other == attr {
                    continue;
                }
                let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
                for &t in tuples {
                    *counts
                        .entry(frame.tuple(t)[other].value_x.as_str())
                        .or_insert(0) += 1;
                }
                let top = counts.values().copied().max().unwrap_or(0);
                agreement_sum += top as f64 / tuples.len() as f64;
                agreement_n += 1;
            }
        }
        if agreement_n == 0 {
            continue;
        }
        let score = coverage * agreement_sum / agreement_n as f64;
        if best.is_none_or(|(_, bs)| score > bs) {
            best = Some((attr, score));
        }
    }
    best.map(|(attr, _)| attr)
}

/// OR-combine model predictions with duplicate-record disagreement: group
/// tuples by the key column, and within each group flag cells that
/// disagree with the group's majority value for their attribute
/// (requires a group of ≥ `min_group` records and a strict majority).
pub fn duplicate_aware(
    frame: &CellFrame,
    predictions: &[bool],
    key_attr: usize,
    min_group: usize,
) -> Vec<bool> {
    assert_eq!(
        predictions.len(),
        frame.cells().len(),
        "duplicate_aware: prediction length"
    );
    let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for t in 0..frame.n_tuples() {
        let key = frame.tuple(t)[key_attr].value_x.as_str();
        if !key.is_empty() {
            groups.entry(key).or_default().push(t);
        }
    }
    let mut out = predictions.to_vec();
    for tuples in groups.values().filter(|ts| ts.len() >= min_group) {
        for attr in 0..frame.n_attrs() {
            if attr == key_attr {
                continue;
            }
            let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
            for &t in tuples {
                *counts
                    .entry(frame.tuple(t)[attr].value_x.as_str())
                    .or_insert(0) += 1;
            }
            // Plurality arbitration: clean copies of a value agree
            // exactly while corruptions scatter, so the top value wins as
            // long as it is unambiguous and not a singleton.
            let mut ranked: Vec<(&str, usize)> = counts.iter().map(|(v, c)| (*v, *c)).collect();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            let (majority, m_count) = ranked[0];
            if m_count < 2 || (ranked.len() > 1 && ranked[1].1 == m_count) {
                continue; // singleton or tied plurality: cannot arbitrate
            }
            for &t in tuples {
                if frame.tuple(t)[attr].value_x != majority {
                    out[frame.cell_index(t, attr)] = true;
                }
            }
        }
    }
    out
}

/// Convenience: auto-detect the key and apply [`duplicate_aware`]; falls
/// back to the raw predictions when no key-like column exists.
pub fn duplicate_aware_auto(frame: &CellFrame, predictions: &[bool]) -> Vec<bool> {
    match identify_record_key(frame) {
        Some(key) => duplicate_aware(frame, predictions, key, 3),
        None => predictions.to_vec(),
    }
}

/// Distinct values of a column (used by tests and diagnostics).
pub fn column_cardinality(frame: &CellFrame, attr: usize) -> usize {
    let set: HashSet<&str> = (0..frame.n_tuples())
        .map(|t| frame.tuple(t)[attr].value_x.as_str())
        .collect();
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_datasets::{Dataset, GenConfig};
    use etsb_table::Table;

    #[test]
    fn fd_augmentation_adds_dependency_violations() {
        let mut dirty = Table::with_columns(&["city", "state"]);
        let mut clean = Table::with_columns(&["city", "state"]);
        for i in 0..40 {
            let (c, s) = if i % 2 == 0 {
                ("rome", "IT")
            } else {
                ("paris", "FR")
            };
            clean.push_row_strs(&[c, s]);
            if i == 6 {
                dirty.push_row_strs(&[c, "FR"]);
            } else {
                dirty.push_row_strs(&[c, s]);
            }
        }
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        let none = vec![false; frame.cells().len()];
        let augmented = fd_augmented(&frame, &none, 0.95);
        assert!(
            augmented[frame.cell_index(6, 1)],
            "the violated state cell is flagged"
        );
        assert!(!augmented[frame.cell_index(0, 1)]);
    }

    #[test]
    fn identifies_the_flight_key_column() {
        let pair = Dataset::Flights
            .generate(&GenConfig {
                scale: 0.1,
                seed: 1,
            })
            .expect("dataset generation");
        let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
        let key = identify_record_key(&frame).expect("flights has a key");
        // Column 2 is the flight identifier.
        assert_eq!(frame.attrs()[key], "flight");
    }

    #[test]
    fn duplicate_arbitration_flags_minority_times() {
        // Three reports of the same flight; one departure time disagrees.
        let mut dirty = Table::with_columns(&["flight", "dep"]);
        for src in 0..3 {
            for f in 0..10 {
                let dep = if src == 2 && f == 0 {
                    "2:26 p.m."
                } else {
                    "2:46 p.m."
                };
                dirty.push_row(vec![format!("UA-{f}"), dep.to_string()]);
            }
        }
        let frame = CellFrame::merge(&dirty, &dirty).unwrap();
        let none = vec![false; frame.cells().len()];
        let out = duplicate_aware(&frame, &none, 0, 3);
        let flagged: Vec<usize> = (0..frame.cells().len()).filter(|&i| out[i]).collect();
        assert_eq!(flagged, vec![frame.cell_index(20, 1)]);
    }

    #[test]
    fn duplicate_aware_improves_flights_recall() {
        // The headline §5.7 claim: duplicate handling recovers the
        // invisible time-variation errors on Flights.
        let pair = Dataset::Flights
            .generate(&GenConfig {
                scale: 0.1,
                seed: 2,
            })
            .expect("dataset generation");
        let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
        let labels: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();
        let none = vec![false; frame.cells().len()];
        let out = duplicate_aware_auto(&frame, &none);
        let m = crate::eval::Metrics::from_predictions(&out, &labels);
        assert!(
            m.recall > 0.25,
            "duplicate arbitration alone should catch a chunk of errors: recall {:.2}",
            m.recall
        );
        assert!(
            m.precision > 0.5,
            "majority arbitration should rarely flag clean cells: precision {:.2}",
            m.precision
        );
    }

    #[test]
    fn no_key_means_no_change() {
        let mut t = Table::with_columns(&["v"]);
        for i in 0..50 {
            t.push_row(vec![format!("unique-{i}")]);
        }
        let frame = CellFrame::merge(&t, &t).unwrap();
        let preds = vec![false; frame.cells().len()];
        assert_eq!(duplicate_aware_auto(&frame, &preds), preds);
    }

    #[test]
    fn cardinality_helper() {
        let mut t = Table::with_columns(&["v"]);
        for i in 0..10 {
            t.push_row(vec![format!("{}", i % 3)]);
        }
        let frame = CellFrame::merge(&t, &t).unwrap();
        assert_eq!(column_cardinality(&frame, 0), 3);
    }
}
