//! # etsb-core
//!
//! End-to-end reproduction of **"Detecting Errors in Databases with
//! Bidirectional Recurrent Neural Networks"** (Holzer & Stockinger,
//! EDBT 2022): a cell-level error detector that learns, from only 20
//! user-labelled tuples, which values of a dirty table are erroneous.
//!
//! The crate wires together the substrates of this workspace:
//!
//! * [`encode`] — turns a merged [`etsb_table::CellFrame`] into model
//!   inputs (character index sequences, attribute ids, normalized
//!   lengths, labels),
//! * [`sampling`] — the paper's three trainset-selection algorithms:
//!   [`sampling::random_set`] (Alg. 1), [`sampling::raha_set`] (Alg. 2,
//!   via `etsb-raha`) and the novel [`sampling::diver_set`] (Alg. 3),
//! * [`model`] — the two architectures of §4.3: [`model::TsbRnn`]
//!   (two-stacked bidirectional RNN over characters) and
//!   [`model::EtsbRnn`] (enriched with attribute metadata and value
//!   length),
//! * [`train`] — the §5.2 protocol: 120 epochs, batches of a quarter of
//!   the trainset, RMSprop, binary cross-entropy, best-train-loss weight
//!   checkpointing, accuracy history for the paper's Figures 6–7,
//! * [`eval`] — precision/recall/F1 and the mean ± standard-deviation
//!   aggregation of Tables 3–4,
//! * [`pipeline`] — one-call experiment runner ([`pipeline::run_once`] /
//!   [`pipeline::run_repeated`]),
//! * [`rotom`] — a Rotom-style data-augmentation baseline so every row of
//!   the paper's Table 3 is backed by runnable code.
//!
//! ## Quickstart
//!
//! ```no_run
//! use etsb_core::pipeline::run_once;
//! use etsb_core::config::{ExperimentConfig, ModelKind, SamplerKind};
//! use etsb_datasets::{Dataset, GenConfig};
//!
//! let pair = Dataset::Beers.generate(&GenConfig { scale: 0.1, seed: 1 }).expect("dataset generation");
//! let cfg = ExperimentConfig {
//!     model: ModelKind::Etsb,
//!     sampler: SamplerKind::DiverSet,
//!     ..ExperimentConfig::default()
//! };
//! let result = run_once(&pair.dirty, &pair.clean, &cfg, 0).unwrap();
//! println!("F1 = {:.2}", result.metrics.f1);
//! ```

#![warn(missing_docs)]

/// Bounded, deterministic LRU over per-cell prediction probabilities.
pub mod cache;
/// Experiment, model and training hyper-parameter records.
pub mod config;
/// Cell-text to padded character-tensor encoding.
pub mod encode;
/// Precision/recall/F1 metrics and multi-repetition aggregation.
pub mod eval;
/// Paper section 5 extensions: attribute embeddings and length features.
pub mod extensions;
/// Run manifests: recorded provenance (seed, config, workers, version).
pub mod manifest;
/// The TSB/ETSB bidirectional RNN architectures.
pub mod model;
/// Model checkpoint serialization.
pub mod persist;
/// End-to-end experiment pipeline (`run_once` and friends).
pub mod pipeline;
/// The Rotom-style label-efficient sampling baseline.
pub mod rotom;
/// Training-set samplers (RandomSet, DiverSet, ...).
pub mod sampling;
/// Chunk-at-a-time streaming detection with O(chunk) memory.
pub mod stream;
/// Mini-batch training loop with early stopping.
pub mod train;

pub use cache::{CacheStats, PredictCache, PredictKey};
pub use config::{ExperimentConfig, ModelKind, SamplerKind, TrainConfig};
pub use encode::EncodedDataset;
pub use etsb_tensor::KernelPolicy;
pub use eval::{aggregate, Metrics, Summary};
pub use manifest::{DatasetInfo, RunManifest};
pub use pipeline::{run_once, run_repeated, RepeatedResult, RunResult};
pub use stream::{stream_predict, StreamChunk, StreamError, StreamMetrics, StreamOutcome};
