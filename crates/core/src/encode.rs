//! Encoding of a merged [`CellFrame`] into model inputs, and the
//! train/test split by tuple id.

use etsb_table::{normalize_value, AttrIndex, CellFrame, CharIndex, Table, TableError};

/// Encode one **already-normalized** value against a frozen [`CharIndex`]
/// and return its `length_norm` against a caller-supplied per-attribute
/// maximum — the single frozen-dict encode rule shared by serve-request
/// encoding ([`EncodedDataset::from_request_cells`]) and the streaming
/// chunk encoder ([`crate::stream`]). The formula is byte-for-byte the
/// one `CellFrame::merge` uses, which is what keeps every frozen-dict
/// path bitwise identical to the in-memory merge.
pub(crate) fn encode_frozen_into(
    char_index: &CharIndex,
    value: &str,
    col_max: usize,
    seq: &mut Vec<usize>,
) -> f32 {
    char_index.encode_into(value, seq);
    let len = value.chars().count();
    if col_max == 0 {
        0.0
    } else {
        len as f32 / col_max as f32
    }
}

/// Model-ready encoding of every cell of a dataset.
///
/// Arrays are indexed in `frame.cells()` order (tuple-major). The models
/// consume sequences at true length (§4.1's padding is only needed for
/// fixed-width tensor backends; see [`CharIndex::encode`]).
#[derive(Clone, Debug)]
pub struct EncodedDataset {
    /// Character-index sequence per cell (always at least one step).
    pub sequences: Vec<Vec<usize>>,
    /// Attribute id per cell (input to the ETSB metadata path).
    pub attr_ids: Vec<usize>,
    /// Normalized value length per cell (input to the ETSB length path).
    pub length_norms: Vec<f32>,
    /// Ground-truth error labels (`true` = error).
    pub labels: Vec<bool>,
    /// The value dictionary.
    pub char_index: CharIndex,
    /// The attribute dictionary.
    pub attr_index: AttrIndex,
    /// Tuples in the dataset.
    pub n_tuples: usize,
    /// Attributes per tuple.
    pub n_attrs: usize,
}

impl EncodedDataset {
    /// Encode every cell of a frame.
    pub fn from_frame(frame: &CellFrame) -> Self {
        let char_index = CharIndex::build(frame);
        let attr_index = AttrIndex::build(frame);
        let n_cells = frame.cells().len();
        let mut sequences = Vec::with_capacity(n_cells);
        let mut attr_ids = Vec::with_capacity(n_cells);
        let mut length_norms = Vec::with_capacity(n_cells);
        let mut labels = Vec::with_capacity(n_cells);
        for cell in frame.cells() {
            sequences.push(char_index.encode(&cell.value_x));
            attr_ids.push(cell.attr);
            length_norms.push(cell.length_norm);
            labels.push(cell.label);
        }
        Self {
            sequences,
            attr_ids,
            length_norms,
            labels,
            char_index,
            attr_index,
            n_tuples: frame.n_tuples(),
            n_attrs: frame.n_attrs(),
        }
    }

    /// Encode a *dirty-only* table (no ground truth) with dictionaries
    /// from training time — the deployment path used by
    /// [`crate::persist::LoadedDetector`]. Characters unseen during
    /// training map to the pad/unknown index; `length_norm` is computed
    /// against this table's own per-column maxima; all labels are
    /// `false` placeholders (there is no ground truth to compare to).
    ///
    /// The table's columns must match the training schema by name and
    /// order.
    pub fn from_dirty_table(
        table: &Table,
        char_index: &CharIndex,
        attr_index: &AttrIndex,
    ) -> Result<Self, TableError> {
        if table.n_cols() != attr_index.len() {
            return Err(TableError::ShapeMismatch {
                dirty: table.shape(),
                clean: (table.n_rows(), attr_index.len()),
            });
        }
        for (c, col) in table.columns().iter().enumerate() {
            if attr_index.name_of(c) != col {
                return Err(TableError::UnknownColumn(col.clone()));
            }
        }
        // Self-merge performs the same normalization (trim, truncation,
        // length_norm) as the training path.
        let frame = CellFrame::merge(table, table)?;
        let n_cells = frame.cells().len();
        let mut sequences = Vec::with_capacity(n_cells);
        let mut attr_ids = Vec::with_capacity(n_cells);
        let mut length_norms = Vec::with_capacity(n_cells);
        for cell in frame.cells() {
            sequences.push(char_index.encode(&cell.value_x));
            attr_ids.push(cell.attr);
            length_norms.push(cell.length_norm);
        }
        Ok(Self {
            sequences,
            attr_ids,
            length_norms,
            labels: vec![false; n_cells],
            char_index: char_index.clone(),
            attr_index: attr_index.clone(),
            n_tuples: frame.n_tuples(),
            n_attrs: frame.n_attrs(),
        })
    }

    /// Encode an ad-hoc batch of `(attribute id, raw value)` cells with
    /// training-time dictionaries — the batch-entry point of the serving
    /// path, where requests arrive as loose cells rather than a table.
    ///
    /// Values go through the same normalization as [`CellFrame::merge`]
    /// (leading whitespace trimmed, truncation to
    /// [`etsb_table::MAX_VALUE_LEN`] characters) and `length_norm` is
    /// computed against *this batch's* per-attribute maxima, mirroring
    /// [`EncodedDataset::from_dirty_table`]'s per-table semantics. The
    /// encoding of a batch is therefore a pure function of the batch
    /// alone — concatenating independently encoded batches for one
    /// coalesced forward pass cannot change any cell's inputs, which is
    /// what keeps coalesced serving bitwise identical to sequential
    /// serving.
    ///
    /// Labels are `false` placeholders; `n_tuples` counts the cells (each
    /// ad-hoc cell stands alone). Returns an error if an attribute id is
    /// out of range for the dictionary.
    pub fn from_request_cells(
        cells: &[(usize, &str)],
        char_index: &CharIndex,
        attr_index: &AttrIndex,
    ) -> Result<Self, TableError> {
        let mut max_len = vec![0usize; attr_index.len()];
        let mut normed = Vec::with_capacity(cells.len());
        for &(attr, value) in cells {
            if attr >= attr_index.len() {
                return Err(TableError::UnknownColumn(format!("attribute id {attr}")));
            }
            let value = normalize_value(value);
            max_len[attr] = max_len[attr].max(value.chars().count());
            normed.push((attr, value));
        }
        let mut sequences = Vec::with_capacity(cells.len());
        let mut attr_ids = Vec::with_capacity(cells.len());
        let mut length_norms = Vec::with_capacity(cells.len());
        for (attr, value) in &normed {
            let mut seq = Vec::new();
            length_norms.push(encode_frozen_into(
                char_index,
                value,
                max_len[*attr],
                &mut seq,
            ));
            sequences.push(seq);
            attr_ids.push(*attr);
        }
        Ok(Self {
            sequences,
            attr_ids,
            length_norms,
            labels: vec![false; cells.len()],
            char_index: char_index.clone(),
            attr_index: attr_index.clone(),
            n_tuples: cells.len(),
            n_attrs: attr_index.len(),
        })
    }

    /// A dataset with dictionaries but no cells — exactly enough to
    /// construct a model of the right dimensions (persistence path).
    pub fn empty_with_dicts(char_index: CharIndex, attr_index: AttrIndex) -> Self {
        let n_attrs = attr_index.len();
        Self {
            sequences: Vec::new(),
            attr_ids: Vec::new(),
            length_norms: Vec::new(),
            labels: Vec::new(),
            char_index,
            attr_index,
            n_tuples: 0,
            n_attrs,
        }
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.sequences.len()
    }

    /// Split cell indices into (train, test) by tuple membership:
    /// all cells of a trainset tuple go to train, the rest to test —
    /// the paper's "trainset of size 220 = 20 tuples x 11 attributes".
    pub fn split_by_tuples(&self, train_tuples: &[usize]) -> (Vec<usize>, Vec<usize>) {
        let mut in_train = vec![false; self.n_tuples];
        for &t in train_tuples {
            assert!(t < self.n_tuples, "split_by_tuples: tuple {t} out of range");
            in_train[t] = true;
        }
        let mut train = Vec::with_capacity(train_tuples.len() * self.n_attrs);
        let mut test = Vec::with_capacity(self.n_cells() - train.capacity().min(self.n_cells()));
        for (t, &is_train) in in_train.iter().enumerate() {
            let base = t * self.n_attrs;
            let dst = if is_train { &mut train } else { &mut test };
            dst.extend(base..base + self.n_attrs);
        }
        (train, test)
    }

    /// Labels of a set of cell indices.
    pub fn labels_of(&self, cells: &[usize]) -> Vec<bool> {
        cells.iter().map(|&c| self.labels[c]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_table::Table;

    fn frame() -> CellFrame {
        let mut d = Table::with_columns(&["a", "b"]);
        d.push_row_strs(&["ab", ""]);
        d.push_row_strs(&["c", "dd"]);
        d.push_row_strs(&["ab", "dd"]);
        let mut c = Table::with_columns(&["a", "b"]);
        c.push_row_strs(&["ab", "x"]);
        c.push_row_strs(&["c", "dd"]);
        c.push_row_strs(&["ab", "dd"]);
        CellFrame::merge(&d, &c).unwrap()
    }

    #[test]
    fn encoding_shapes_and_content() {
        let enc = EncodedDataset::from_frame(&frame());
        assert_eq!(enc.n_cells(), 6);
        assert_eq!(enc.n_tuples, 3);
        assert_eq!(enc.n_attrs, 2);
        // 'ab' encodes to two distinct nonzero indices.
        assert_eq!(enc.sequences[0].len(), 2);
        assert!(enc.sequences[0].iter().all(|&i| i > 0));
        // The empty value encodes as a single pad step.
        assert_eq!(enc.sequences[1], vec![0]);
        assert!(enc.labels[1]); // "" != "x"
        assert!(!enc.labels[2]);
        assert_eq!(enc.attr_ids, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn split_keeps_tuples_whole() {
        let enc = EncodedDataset::from_frame(&frame());
        let (train, test) = enc.split_by_tuples(&[1]);
        assert_eq!(train, vec![2, 3]);
        assert_eq!(test, vec![0, 1, 4, 5]);
        // Disjoint and exhaustive.
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn labels_of_selects() {
        let enc = EncodedDataset::from_frame(&frame());
        assert_eq!(enc.labels_of(&[1, 2]), vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn split_rejects_bad_tuple() {
        let enc = EncodedDataset::from_frame(&frame());
        let _ = enc.split_by_tuples(&[99]);
    }

    #[test]
    fn request_cells_encode_like_the_table_path() {
        let trained = EncodedDataset::from_frame(&frame());
        // The same values submitted as loose request cells encode to the
        // same sequences and per-batch length norms as a one-table apply.
        let req = EncodedDataset::from_request_cells(
            &[(0, "ab"), (1, ""), (0, "c"), (1, "dd")],
            &trained.char_index,
            &trained.attr_index,
        )
        .unwrap();
        assert_eq!(req.n_cells(), 4);
        assert_eq!(req.sequences[0], trained.sequences[0]);
        assert_eq!(req.sequences[1], vec![0], "empty value is one pad step");
        // Per-attribute maxima over this batch: attr 0 max 2, attr 1 max 2.
        assert_eq!(req.length_norms, vec![1.0, 0.0, 0.5, 1.0]);
        assert!(req.labels.iter().all(|&l| !l));
    }

    #[test]
    fn request_cells_normalize_and_handle_oov() {
        let trained = EncodedDataset::from_frame(&frame());
        let req = EncodedDataset::from_request_cells(
            &[(0, "  ab"), (0, "zz")],
            &trained.char_index,
            &trained.attr_index,
        )
        .unwrap();
        // Leading whitespace trimmed exactly like CellFrame::merge.
        assert_eq!(req.sequences[0], trained.sequences[0]);
        // Characters unseen at training time map to the pad/OOV index.
        assert_eq!(req.sequences[1], vec![0, 0]);
    }

    #[test]
    fn request_cells_reject_unknown_attribute_id() {
        let trained = EncodedDataset::from_frame(&frame());
        assert!(EncodedDataset::from_request_cells(
            &[(5, "ab")],
            &trained.char_index,
            &trained.attr_index,
        )
        .is_err());
    }

    #[test]
    fn request_cells_empty_batch_is_fine() {
        let trained = EncodedDataset::from_frame(&frame());
        let req = EncodedDataset::from_request_cells(&[], &trained.char_index, &trained.attr_index)
            .unwrap();
        assert_eq!(req.n_cells(), 0);
    }
}
