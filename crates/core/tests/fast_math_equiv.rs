//! Epsilon-bounded equivalence of the FastMath inference path against
//! the exact bitwise path.
//!
//! The documented contract (DESIGN.md §15): for every cell type, the
//! FastMath probabilities stay within [`MAX_ABS_DIFF`] of the exact
//! path with **zero** prediction flips at the 0.5 threshold, and both
//! policies are bitwise invariant across worker counts 1/2/4 (sharding
//! is a pure function of the cell count, and each policy's reduction
//! chains are fixed).
//!
//! One test function on purpose: the worker override is process-global
//! state, and the default test harness runs `#[test]`s concurrently.

use etsb_core::config::{CellKind, ModelKind, TrainConfig};
use etsb_core::model::AnyModel;
use etsb_core::{EncodedDataset, KernelPolicy};
use etsb_nn::parallel::set_worker_override;
use etsb_nn::{Optimizer, Rmsprop};
use etsb_table::{CellFrame, Table};
use etsb_tensor::init::seeded_rng;

/// The documented FastMath drift bound at this model scale: FMA
/// contracts one rounding per multiply-add, so the worst-case drift
/// grows with chain length but stays orders of magnitude below any
/// decision boundary a trained detector produces.
const MAX_ABS_DIFF: f32 = 1e-5;

/// The same two-column marked dataset the in-crate model tests train
/// on: `val{k}` values with a `!` error mark on every third tuple.
fn marked_dataset(n: usize) -> EncodedDataset {
    let mut dirty = Table::with_columns(&["v", "w"]);
    let mut clean = Table::with_columns(&["v", "w"]);
    for i in 0..n {
        let v = format!("val{}", i % 5);
        let w = format!("{}", 10 + (i % 4));
        if i % 3 == 0 {
            dirty.push_row(vec![format!("{v}!"), w.clone()]);
        } else {
            dirty.push_row(vec![v.clone(), w.clone()]);
        }
        clean.push_row(vec![v, w]);
    }
    let frame = CellFrame::merge(&dirty, &clean).expect("fixture tables always merge");
    EncodedDataset::from_frame(&frame)
}

/// Briefly train so probabilities separate from the 0.5 threshold —
/// the flip-rate bound is only meaningful on a detector whose outputs
/// are not all sitting on the decision boundary.
fn trained(cell: CellKind, data: &EncodedDataset) -> AnyModel {
    let cfg = TrainConfig {
        rnn_units: 6,
        attr_rnn_units: 3,
        head_dim: 6,
        cell,
        ..Default::default()
    };
    let mut model = AnyModel::new(ModelKind::Etsb, data, &cfg, &mut seeded_rng(11));
    let all: Vec<usize> = (0..data.n_cells()).collect();
    let mut opt = Rmsprop::new(5e-3);
    let mut grads = model.grad_buffer();
    for _ in 0..40 {
        grads.zero();
        model.train_batch(data, &all, &mut grads);
        opt.step(&mut model.params_mut(), &grads);
    }
    model
}

#[test]
fn fast_math_is_epsilon_close_with_zero_flips_across_workers() {
    let data = marked_dataset(24);
    let cells: Vec<usize> = (0..data.n_cells()).collect();
    for cell in [CellKind::Vanilla, CellKind::Lstm, CellKind::Gru] {
        let model = trained(cell, &data);

        set_worker_override(1);
        let exact = model.predict_probs_with(&data, &cells, KernelPolicy::Exact);
        let fast = model.predict_probs_with(&data, &cells, KernelPolicy::FastMath);

        // Both policies must be bitwise worker-invariant.
        for workers in [2usize, 4] {
            set_worker_override(workers);
            let exact_w = model.predict_probs_with(&data, &cells, KernelPolicy::Exact);
            let fast_w = model.predict_probs_with(&data, &cells, KernelPolicy::FastMath);
            for (i, (a, b)) in exact.iter().zip(&exact_w).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{cell:?}: exact path diverged at cell {i} with {workers} workers"
                );
            }
            for (i, (a, b)) in fast.iter().zip(&fast_w).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{cell:?}: fast path diverged at cell {i} with {workers} workers"
                );
            }
        }
        set_worker_override(0);

        // Epsilon bound and zero prediction flips against the exact path.
        let mut max_diff = 0.0f32;
        for (i, (e, f)) in exact.iter().zip(&fast).enumerate() {
            max_diff = max_diff.max((e - f).abs());
            assert_eq!(
                *e >= 0.5,
                *f >= 0.5,
                "{cell:?}: prediction flip at cell {i} (exact {e} vs fast {f})"
            );
        }
        assert!(
            max_diff <= MAX_ABS_DIFF,
            "{cell:?}: fast-math drifted {max_diff} from exact (bound {MAX_ABS_DIFF})"
        );
        assert!(
            max_diff > 0.0,
            "{cell:?}: fast path is bitwise identical to exact — the FastMath \
             kernels were not actually exercised"
        );
    }
}
