//! Property-based tests for the trainset-selection algorithms and the
//! evaluation metrics.

use etsb_core::config::SamplerKind;
use etsb_core::eval::{Metrics, Summary};
use etsb_core::sampling;
use etsb_table::{CellFrame, Table};
use proptest::prelude::*;

/// Random small frames: up to 40 tuples x 3 attrs over a tiny value
/// alphabet (so value collisions — the interesting case for DiverSet —
/// are common).
fn frame() -> impl Strategy<Value = CellFrame> {
    (2usize..40, 1usize..4).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(proptest::collection::vec(0u8..6, cols), rows).prop_map(
            move |data| {
                let names: Vec<String> = (0..cols).map(|c| format!("c{c}")).collect();
                let mut t = Table::new(names);
                for row in data {
                    t.push_row(
                        row.into_iter()
                            .map(|v| {
                                if v == 0 {
                                    String::new()
                                } else {
                                    format!("v{v}")
                                }
                            })
                            .collect(),
                    );
                }
                CellFrame::merge(&t, &t).unwrap()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn samplers_return_distinct_in_range_ids(f in frame(), n in 1usize..25, seed in 0u64..100) {
        for kind in [SamplerKind::Random, SamplerKind::DiverSet] {
            let s = sampling::select(kind, &f, n, seed);
            prop_assert_eq!(s.len(), n.min(f.n_tuples()), "{:?}", kind);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            prop_assert_eq!(d.len(), s.len(), "{:?} returned duplicates", kind);
            prop_assert!(s.iter().all(|&t| t < f.n_tuples()));
        }
    }

    #[test]
    fn diver_set_first_pick_maximizes_empties_among_full_coverage(f in frame(), seed in 0u64..100) {
        // On the first iteration every tuple has #unseen = n_attrs, so the
        // pick must be among the tuples with the most empty values.
        let s = sampling::diver_set(&f, 1, seed);
        let empties = |t: usize| f.tuple(t).iter().filter(|c| c.empty).count();
        let max_empty = (0..f.n_tuples()).map(empties).max().unwrap();
        prop_assert_eq!(empties(s[0]), max_empty);
    }

    #[test]
    fn metrics_are_bounded_and_consistent(
        preds in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let labels: Vec<bool> = preds.iter().map(|p| !p).collect(); // worst case
        let m = Metrics::from_predictions(&preds, &labels);
        prop_assert!(m.tp + m.fp + m.fn_ + m.tn == preds.len());
        for v in [m.precision, m.recall, m.f1, m.accuracy] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn f1_is_harmonic_mean(tp in 0usize..50, fp in 0usize..50, fn_ in 0usize..50) {
        // Build a prediction vector realizing this confusion matrix.
        let mut preds = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..tp { preds.push(true); labels.push(true); }
        for _ in 0..fp { preds.push(true); labels.push(false); }
        for _ in 0..fn_ { preds.push(false); labels.push(true); }
        preds.push(false); labels.push(false); // ensure non-empty
        let m = Metrics::from_predictions(&preds, &labels);
        if m.precision + m.recall > 0.0 {
            let expect = 2.0 * m.precision * m.recall / (m.precision + m.recall);
            prop_assert!((m.f1 - expect).abs() < 1e-9);
        } else {
            prop_assert_eq!(m.f1, 0.0);
        }
    }

    #[test]
    fn summary_mean_within_range(vals in proptest::collection::vec(0.0f64..1.0, 1..30)) {
        let s = Summary::of(&vals).expect("non-empty sample");
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(s.mean >= min - 1e-12 && s.mean <= max + 1e-12);
        prop_assert!(s.std >= 0.0 && s.std <= 0.5 + 1e-12); // bounded on [0,1] data
        prop_assert!(s.ci95() >= 0.0);
    }
}
