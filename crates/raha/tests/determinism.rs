//! Twin runtime check for the `hash-iter-order` lint: the full Raha
//! pipeline must be byte-identical across repeated runs inside one
//! process.
//!
//! std's `HashMap` seeds its hasher per *instance*, so two `fit` calls
//! genuinely exercise two different hash orders. If any iteration order
//! leaked into the strategy features, the clusterings, the greedy label
//! sampler, or the majority votes, these runs would diverge — which is
//! exactly what happened before the order-leaking maps were converted
//! to `BTreeMap`/sorted iteration.

use etsb_raha::{RahaConfig, RahaDetector};
use etsb_table::{CellFrame, Table};

/// A two-column frame engineered to be tie-heavy: every clean value in
/// column `a` appears with the same frequency, and the `a -> b` mapping
/// has tied right-hand-side counts, so frequency-outlier scores and
/// FD majority votes must break ties deterministically rather than by
/// hash order.
fn tie_heavy_frame() -> CellFrame {
    let mut dirty = Table::with_columns(&["a", "b"]);
    let mut clean = Table::with_columns(&["a", "b"]);
    for i in 0..120 {
        // Six codes, each appearing exactly 20 times: all counts tie.
        let a = format!("c{}", i % 6);
        // For each code, two possible rhs values with equal counts: the
        // FD majority vote for a -> b is a pure tie-break.
        let b = format!("v{}-{}", i % 6, (i / 6) % 2);
        if i % 15 == 0 {
            dirty.push_row(vec!["##".to_string(), b.clone()]);
        } else {
            dirty.push_row(vec![a.clone(), b.clone()]);
        }
        clean.push_row(vec![a, b]);
    }
    CellFrame::merge(&dirty, &clean).expect("frames share shape")
}

/// One full pipeline run with a fresh detector (fresh hash seeds).
fn run(frame: &CellFrame) -> (Vec<Vec<f32>>, Vec<usize>, Vec<bool>) {
    let detector = RahaDetector::new(RahaConfig {
        n_label_tuples: 20,
        clusters_per_column: 20,
    });
    let model = detector.fit(frame);
    let features: Vec<Vec<f32>> = (0..frame.cells().len())
        .map(|c| model.features.row_f32(c))
        .collect();
    let sample = model.sample_tuples(20, 7);
    let predictions = model.detect(frame, &sample);
    (features, sample, predictions)
}

#[test]
fn detector_output_is_byte_identical_across_in_process_runs() {
    let frame = tie_heavy_frame();
    let (f1, s1, p1) = run(&frame);
    let (f2, s2, p2) = run(&frame);
    let (f3, s3, p3) = run(&frame);
    assert_eq!(f1, f2, "strategy features drift across runs");
    assert_eq!(f1, f3, "strategy features drift across runs");
    assert_eq!(s1, s2, "label sample drifts across runs");
    assert_eq!(s1, s3, "label sample drifts across runs");
    assert_eq!(p1, p2, "predictions drift across runs");
    assert_eq!(p1, p3, "predictions drift across runs");
}
