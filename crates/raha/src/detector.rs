//! End-to-end Raha: strategies → features → clustering → label sampling →
//! propagation → per-column classification.

use crate::classifier::LogisticRegression;
use crate::cluster::{cluster_columns, ColumnClustering};
use crate::features::{build_features, FeatureMatrix};
use crate::strategies;
use etsb_table::CellFrame;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Raha configuration.
#[derive(Clone, Debug)]
pub struct RahaConfig {
    /// Tuples the user is asked to label (the paper uses 20).
    pub n_label_tuples: usize,
    /// Clusters per column the label budget is spread over. Raha grows
    /// the dendrogram as the budget grows; a fixed `k = budget` matches
    /// its final state.
    pub clusters_per_column: usize,
}

impl Default for RahaConfig {
    fn default() -> Self {
        Self {
            n_label_tuples: 20,
            clusters_per_column: 20,
        }
    }
}

/// The detector: owns configuration, builds [`RahaModel`]s per dataset.
#[derive(Clone, Debug, Default)]
pub struct RahaDetector {
    /// Configuration used for every `fit`.
    pub config: RahaConfig,
}

/// Feature matrix + per-column clusterings for one dataset. Building this
/// is the expensive part; sampling and detection reuse it.
#[derive(Clone, Debug)]
pub struct RahaModel {
    /// Per-cell strategy feature vectors.
    pub features: FeatureMatrix,
    /// Per-column cell clusterings.
    pub clusterings: Vec<ColumnClustering>,
    n_tuples: usize,
    n_attrs: usize,
}

impl RahaDetector {
    /// New detector with the given configuration.
    pub fn new(config: RahaConfig) -> Self {
        Self { config }
    }

    /// Run the strategy battery and clustering over a frame.
    pub fn fit(&self, frame: &CellFrame) -> RahaModel {
        let battery = strategies::default_battery();
        let features = build_features(frame, &battery);
        let clusterings = cluster_columns(frame, &features, self.config.clusters_per_column);
        RahaModel {
            features,
            clusterings,
            n_tuples: frame.n_tuples(),
            n_attrs: frame.n_attrs(),
        }
    }
}

impl RahaModel {
    /// Algorithm 2 (`RahaSet`): greedily pick `n` tuples maximizing
    /// coverage of not-yet-labeled clusters; ties break uniformly at
    /// random via `seed`.
    pub fn sample_tuples(&self, n: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = n.min(self.n_tuples);
        let mut covered: Vec<Vec<bool>> = self
            .clusterings
            .iter()
            .map(|c| vec![false; c.n_clusters])
            .collect();
        let mut chosen = Vec::with_capacity(n);
        let mut remaining: Vec<usize> = (0..self.n_tuples).collect();
        remaining.shuffle(&mut rng); // randomized tie-breaking
        for _ in 0..n {
            // `n <= n_tuples` keeps `remaining` non-empty throughout; an
            // empty scan means there is nothing left worth sampling.
            let Some((pos, _)) = remaining
                .iter()
                .enumerate()
                .map(|(pos, &t)| {
                    let score = (0..self.n_attrs)
                        .filter(|&a| !covered[a][self.clusterings[a].assignment[t]])
                        .count();
                    (pos, score)
                })
                .max_by_key(|&(_, score)| score)
            else {
                break;
            };
            let t = remaining.swap_remove(pos);
            for (a, cov) in covered.iter_mut().enumerate() {
                cov[self.clusterings[a].assignment[t]] = true;
            }
            chosen.push(t);
        }
        chosen
    }

    /// Detect errors given ground-truth labels for `labeled` tuples
    /// (simulating the user's labeling of the proposed sample).
    ///
    /// Returns one prediction per cell in `frame.cells()` order.
    pub fn detect(&self, frame: &CellFrame, labeled: &[usize]) -> Vec<bool> {
        let mut predictions = vec![false; frame.cells().len()];
        for attr in 0..self.n_attrs {
            let clustering = &self.clusterings[attr];
            // Propagate: majority ground-truth label per labeled cluster.
            let mut votes: Vec<(u32, u32)> = vec![(0, 0); clustering.n_clusters]; // (dirty, clean)
            for &t in labeled {
                let cluster = clustering.assignment[t];
                let cell = &frame.cells()[frame.cell_index(t, attr)];
                if cell.label {
                    votes[cluster].0 += 1;
                } else {
                    votes[cluster].1 += 1;
                }
            }
            let cluster_label: Vec<Option<bool>> = votes
                .iter()
                .map(|&(dirty, clean)| {
                    if dirty + clean == 0 {
                        None
                    } else {
                        Some(dirty > clean)
                    }
                })
                .collect();

            // Training set: every cell in a labeled cluster, with the
            // propagated label.
            let mut x = Vec::new();
            let mut y = Vec::new();
            for t in 0..self.n_tuples {
                if let Some(label) = cluster_label[clustering.assignment[t]] {
                    x.push(self.features.row_f32(frame.cell_index(t, attr)));
                    y.push(label);
                }
            }
            let has_both = y.iter().any(|&l| l) && y.iter().any(|&l| !l);
            if has_both {
                let mut clf = LogisticRegression::new(self.features.n_features());
                clf.fit(&x, &y);
                for t in 0..self.n_tuples {
                    let cell = frame.cell_index(t, attr);
                    predictions[cell] = clf.predict(&self.features.row_f32(cell));
                }
            } else {
                // Single-class column: predict the propagated class where
                // known, that same class elsewhere (Raha's behaviour when
                // a column's sample is homogeneous — the source of its
                // low recall on low-error-rate datasets like Hospital).
                let only = y.first().copied().unwrap_or(false);
                for t in 0..self.n_tuples {
                    predictions[frame.cell_index(t, attr)] = only;
                }
            }
        }
        predictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_table::Table;

    /// A column where errors carry an obvious surface marker, so the
    /// strategies light up on exactly the dirty cells.
    fn marked_frame() -> CellFrame {
        let mut dirty = Table::with_columns(&["v"]);
        let mut clean = Table::with_columns(&["v"]);
        for i in 0..120 {
            let val = format!("{}", 100 + (i % 13));
            if i % 10 == 0 {
                dirty.push_row(vec!["###".to_string()]);
            } else {
                dirty.push_row(vec![val.clone()]);
            }
            clean.push_row(vec![val]);
        }
        CellFrame::merge(&dirty, &clean).unwrap()
    }

    #[test]
    fn sample_is_unique_and_sized() {
        let frame = marked_frame();
        let model = RahaDetector::default().fit(&frame);
        let sample = model.sample_tuples(20, 1);
        assert_eq!(sample.len(), 20);
        let mut dedup = sample.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20, "sampled tuples must be unique");
    }

    #[test]
    fn sample_covers_both_clusters() {
        let frame = marked_frame();
        let model = RahaDetector::default().fit(&frame);
        let sample = model.sample_tuples(5, 2);
        let any_dirty = sample.iter().any(|&t| frame.cells()[t].label);
        let any_clean = sample.iter().any(|&t| !frame.cells()[t].label);
        assert!(
            any_dirty && any_clean,
            "cluster-driven sampling should reach both value populations"
        );
    }

    #[test]
    fn detects_marked_errors_end_to_end() {
        let frame = marked_frame();
        let model = RahaDetector::default().fit(&frame);
        let sample = model.sample_tuples(20, 3);
        let preds = model.detect(&frame, &sample);
        let mut tp = 0;
        let mut fp = 0;
        let mut fn_ = 0;
        for (pred, cell) in preds.iter().zip(frame.cells()) {
            match (pred, cell.label) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                _ => {}
            }
        }
        let precision = tp as f64 / (tp + fp).max(1) as f64;
        let recall = tp as f64 / (tp + fn_).max(1) as f64;
        assert!(precision > 0.9, "precision {precision}");
        assert!(recall > 0.9, "recall {recall}");
    }

    #[test]
    fn no_labels_predicts_all_clean() {
        let frame = marked_frame();
        let model = RahaDetector::default().fit(&frame);
        let preds = model.detect(&frame, &[]);
        assert!(preds.iter().all(|&p| !p));
    }

    #[test]
    fn sample_larger_than_dataset_is_clamped() {
        let mut d = Table::with_columns(&["a"]);
        for i in 0..5 {
            d.push_row(vec![i.to_string()]);
        }
        let frame = CellFrame::merge(&d, &d).unwrap();
        let model = RahaDetector::default().fit(&frame);
        assert_eq!(model.sample_tuples(20, 1).len(), 5);
    }
}
