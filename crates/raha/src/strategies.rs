//! Error-detection strategies: each produces one boolean per cell of the
//! frame ("this strategy suspects this cell").
//!
//! Raha's insight is that none of these detectors needs to be *good* —
//! their agreement pattern is a feature vector that a downstream
//! classifier learns to interpret per column.

use etsb_table::CellFrame;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A configured strategy instance.
pub trait Strategy {
    /// Human-readable name (used in diagnostics and bench output).
    fn name(&self) -> String;
    /// One suspicion flag per cell of the frame, in `frame.cells()` order.
    fn run(&self, frame: &CellFrame) -> Vec<bool>;
}

/// The default strategy battery Raha would generate for a dataset.
///
/// The spread of thresholds matters more than any single detector being
/// accurate: two surface forms that co-exist in a column (say `12.0` and
/// `12.0 oz`) must end up with *different* feature vectors so the
/// clustering can separate them and labels propagate correctly — which
/// is why the battery includes deliberately loose thresholds (a value
/// "rare" for 45% of a column is not an outlier, but it is a distinct
/// population).
pub fn default_battery() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(FrequencyOutlier {
            max_rel_freq: 0.005,
        }),
        Box::new(FrequencyOutlier { max_rel_freq: 0.02 }),
        Box::new(FrequencyOutlier { max_rel_freq: 0.05 }),
        Box::new(FrequencyOutlier { max_rel_freq: 0.30 }),
        Box::new(GaussianOutlier { z_threshold: 2.0 }),
        Box::new(GaussianOutlier { z_threshold: 3.0 }),
        Box::new(PatternShape {
            max_rel_freq: 0.01,
            collapse_runs: false,
        }),
        Box::new(PatternShape {
            max_rel_freq: 0.05,
            collapse_runs: true,
        }),
        Box::new(PatternShape {
            max_rel_freq: 0.30,
            collapse_runs: false,
        }),
        Box::new(PatternShape {
            max_rel_freq: 0.50,
            collapse_runs: true,
        }),
        // NOTE: [`RareCharacter`] is intentionally *not* in the default
        // battery. The published Raha has no per-character detector, and
        // including one makes this baseline markedly stronger than the
        // published numbers on Hospital (whose errors are single rare
        // characters). It remains available for custom batteries.
        Box::new(MissingMarker),
        Box::new(FdViolation { min_support: 0.95 }),
        Box::new(KnowledgeBase::builtin()),
    ]
}

// ---------------------------------------------------------------------

/// Flags values whose relative frequency within their column is below a
/// threshold (dBoost-style histogram outlier).
#[derive(Clone, Copy, Debug)]
pub struct FrequencyOutlier {
    /// Values rarer than this fraction of the column are suspicious.
    pub max_rel_freq: f64,
}

impl Strategy for FrequencyOutlier {
    fn name(&self) -> String {
        format!("freq<{}", self.max_rel_freq)
    }

    fn run(&self, frame: &CellFrame) -> Vec<bool> {
        let n = frame.n_tuples() as f64;
        let mut counts: Vec<HashMap<&str, u32>> = vec![HashMap::new(); frame.n_attrs()];
        for cell in frame.cells() {
            *counts[cell.attr].entry(cell.value_x.as_str()).or_insert(0) += 1;
        }
        frame
            .cells()
            .iter()
            .map(|cell| {
                let c = counts[cell.attr][cell.value_x.as_str()] as f64;
                c / n < self.max_rel_freq
            })
            .collect()
    }
}

/// Flags numeric outliers: in columns that are mostly parseable, values
/// with |z-score| above a threshold, plus values that fail to parse at
/// all.
#[derive(Clone, Copy, Debug)]
pub struct GaussianOutlier {
    /// z-score beyond which a value is suspicious.
    pub z_threshold: f64,
}

impl Strategy for GaussianOutlier {
    fn name(&self) -> String {
        format!("gauss|z|>{}", self.z_threshold)
    }

    fn run(&self, frame: &CellFrame) -> Vec<bool> {
        let n_attrs = frame.n_attrs();
        // Pass 1: per-column parse rate, mean, std.
        let mut sums = vec![(0.0f64, 0.0f64, 0usize, 0usize); n_attrs]; // (Σx, Σx², parsed, total)
        for cell in frame.cells() {
            let s = &mut sums[cell.attr];
            s.3 += 1;
            if let Ok(v) = cell.value_x.trim().parse::<f64>() {
                s.0 += v;
                s.1 += v * v;
                s.2 += 1;
            }
        }
        let stats: Vec<Option<(f64, f64)>> = sums
            .iter()
            .map(|&(sx, sxx, parsed, total)| {
                if total == 0 || (parsed as f64) < 0.8 * total as f64 || parsed < 2 {
                    None // not a numeric column
                } else {
                    let mean = sx / parsed as f64;
                    let var = (sxx / parsed as f64 - mean * mean).max(0.0);
                    Some((mean, var.sqrt()))
                }
            })
            .collect();
        frame
            .cells()
            .iter()
            .map(|cell| match stats[cell.attr] {
                None => false,
                Some((mean, std)) => match cell.value_x.trim().parse::<f64>() {
                    Err(_) => true, // non-numeric value in a numeric column
                    Ok(v) => std > 0.0 && ((v - mean) / std).abs() > self.z_threshold,
                },
            })
            .collect()
    }
}

/// Generalize a value to its character-class shape: digits → `d`,
/// letters → `a`, whitespace → `_`, everything else kept verbatim.
/// With `collapse_runs`, consecutive identical classes collapse
/// (`"12.0 oz"` → `"d.d_a"`), generalizing over lengths.
pub fn shape_of(value: &str, collapse_runs: bool) -> String {
    let mut out = String::with_capacity(value.len());
    let mut last: Option<char> = None;
    for ch in value.chars() {
        let class = if ch.is_ascii_digit() {
            'd'
        } else if ch.is_alphabetic() {
            'a'
        } else if ch.is_whitespace() {
            '_'
        } else {
            ch
        };
        if collapse_runs && last == Some(class) {
            continue;
        }
        out.push(class);
        last = Some(class);
    }
    out
}

/// Flags values whose character-class *shape* is rare within the column
/// (Wrangler-style pattern violation).
#[derive(Clone, Copy, Debug)]
pub struct PatternShape {
    /// Shapes rarer than this fraction of the column are suspicious.
    pub max_rel_freq: f64,
    /// Collapse runs of the same character class.
    pub collapse_runs: bool,
}

impl Strategy for PatternShape {
    fn name(&self) -> String {
        format!(
            "shape<{}{}",
            self.max_rel_freq,
            if self.collapse_runs { "+runs" } else { "" }
        )
    }

    fn run(&self, frame: &CellFrame) -> Vec<bool> {
        let n = frame.n_tuples() as f64;
        let mut counts: Vec<HashMap<String, u32>> = vec![HashMap::new(); frame.n_attrs()];
        let shapes: Vec<String> = frame
            .cells()
            .iter()
            .map(|cell| {
                let s = shape_of(&cell.value_x, self.collapse_runs);
                *counts[cell.attr].entry(s.clone()).or_insert(0) += 1;
                s
            })
            .collect();
        frame
            .cells()
            .iter()
            .zip(&shapes)
            .map(|(cell, shape)| (counts[cell.attr][shape] as f64) / n < self.max_rel_freq)
            .collect()
    }
}

/// Flags values containing a character that is rare within the column.
#[derive(Clone, Copy, Debug)]
pub struct RareCharacter {
    /// Characters occurring in fewer than this fraction of the column's
    /// values are suspicious.
    pub max_rel_freq: f64,
}

impl Strategy for RareCharacter {
    fn name(&self) -> String {
        format!("rarechar<{}", self.max_rel_freq)
    }

    fn run(&self, frame: &CellFrame) -> Vec<bool> {
        let n = frame.n_tuples() as f64;
        let mut char_counts: Vec<HashMap<char, u32>> = vec![HashMap::new(); frame.n_attrs()];
        for cell in frame.cells() {
            let distinct: BTreeSet<char> = cell.value_x.chars().collect();
            for ch in distinct {
                *char_counts[cell.attr].entry(ch).or_insert(0) += 1;
            }
        }
        frame
            .cells()
            .iter()
            .map(|cell| {
                cell.value_x
                    .chars()
                    .any(|ch| (char_counts[cell.attr][&ch] as f64) / n < self.max_rel_freq)
            })
            .collect()
    }
}

/// Flags canonical missing-value markers.
#[derive(Clone, Copy, Debug)]
pub struct MissingMarker;

impl Strategy for MissingMarker {
    fn name(&self) -> String {
        "missing".to_string()
    }

    fn run(&self, frame: &CellFrame) -> Vec<bool> {
        frame
            .cells()
            .iter()
            .map(|cell| {
                let v = cell.value_x.trim();
                v.is_empty()
                    || v.eq_ignore_ascii_case("nan")
                    || v.eq_ignore_ascii_case("null")
                    || v.eq_ignore_ascii_case("n/a")
                    || v == "-"
            })
            .collect()
    }
}

/// Approximate functional-dependency violations (NADEEF-style rule
/// checking): for every attribute pair `(A → B)` that holds on at least
/// `min_support` of tuples, cells of `B` disagreeing with their group's
/// majority are flagged.
#[derive(Clone, Copy, Debug)]
pub struct FdViolation {
    /// Minimum fraction of tuples on which a candidate FD must hold.
    pub min_support: f64,
}

impl Strategy for FdViolation {
    fn name(&self) -> String {
        format!("fd>{}", self.min_support)
    }

    fn run(&self, frame: &CellFrame) -> Vec<bool> {
        let n_attrs = frame.n_attrs();
        let n_tuples = frame.n_tuples();
        let mut flags = vec![false; frame.cells().len()];
        if n_tuples < 10 {
            return flags;
        }
        for lhs in 0..n_attrs {
            // Skip key-like columns: grouping by a unique id yields no
            // information and is O(n) wasted work.
            let distinct_lhs: HashSet<&str> = (0..n_tuples)
                .map(|t| frame.tuple(t)[lhs].value_x.as_str())
                .collect();
            if distinct_lhs.len() > n_tuples / 2 || distinct_lhs.len() < 2 {
                continue;
            }
            for rhs in 0..n_attrs {
                if lhs == rhs {
                    continue;
                }
                // group: lhs value → (rhs value → count). Ordered maps:
                // the majority vote below must break count ties on the
                // same rhs value in every run.
                let mut groups: BTreeMap<&str, BTreeMap<&str, u32>> = BTreeMap::new();
                for t in 0..n_tuples {
                    let l = frame.tuple(t)[lhs].value_x.as_str();
                    let r = frame.tuple(t)[rhs].value_x.as_str();
                    *groups.entry(l).or_default().entry(r).or_insert(0) += 1;
                }
                let agree: u64 = groups
                    .values()
                    .map(|rhs_counts| u64::from(rhs_counts.values().copied().max().unwrap_or(0)))
                    .sum();
                if (agree as f64) < self.min_support * n_tuples as f64 {
                    continue; // not (approximately) an FD
                }
                // Flag rhs cells that disagree with their group majority
                // (ties break toward the lexicographically largest value,
                // deterministically, via the ordered map).
                let majority: BTreeMap<&str, &str> = groups
                    .iter()
                    .filter_map(|(l, rhs_counts)| {
                        rhs_counts
                            .iter()
                            .max_by_key(|(_, c)| **c)
                            .map(|(v, _)| (*l, *v))
                    })
                    .collect();
                for t in 0..n_tuples {
                    let l = frame.tuple(t)[lhs].value_x.as_str();
                    let r = frame.tuple(t)[rhs].value_x.as_str();
                    if majority[l] != r {
                        flags[frame.cell_index(t, rhs)] = true;
                    }
                }
            }
        }
        flags
    }
}

/// KATARA-style knowledge-base lookups. The original consults DBpedia;
/// this substitution carries builtin domain dictionaries (US states,
/// months, language codes) and flags values in columns that mostly match
/// a domain but themselves do not.
#[derive(Clone, Debug)]
pub struct KnowledgeBase {
    domains: Vec<(String, HashSet<String>)>,
}

impl KnowledgeBase {
    /// The builtin dictionaries.
    pub fn builtin() -> Self {
        let states: HashSet<String> = [
            "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN",
            "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV",
            "NH", "NJ", "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN",
            "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let months: HashSet<String> = [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let genders: HashSet<String> = ["M", "F"].iter().map(|s| s.to_string()).collect();
        Self {
            domains: vec![
                ("us_states".to_string(), states),
                ("months".to_string(), months),
                ("gender".to_string(), genders),
            ],
        }
    }

    /// A knowledge base over custom domains.
    pub fn new(domains: Vec<(String, HashSet<String>)>) -> Self {
        Self { domains }
    }
}

impl Strategy for KnowledgeBase {
    fn name(&self) -> String {
        format!("kb[{}]", self.domains.len())
    }

    fn run(&self, frame: &CellFrame) -> Vec<bool> {
        let n_tuples = frame.n_tuples().max(1) as f64;
        let n_attrs = frame.n_attrs();
        // Which domain (if any) does each column belong to?
        let mut col_domain: Vec<Option<usize>> = vec![None; n_attrs];
        for (a, slot) in col_domain.iter_mut().enumerate() {
            for (d, (_, values)) in self.domains.iter().enumerate() {
                let matches = (0..frame.n_tuples())
                    .filter(|&t| values.contains(&frame.tuple(t)[a].value_x))
                    .count();
                if matches as f64 / n_tuples > 0.8 {
                    *slot = Some(d);
                    break;
                }
            }
        }
        frame
            .cells()
            .iter()
            .map(|cell| match col_domain[cell.attr] {
                Some(d) => !self.domains[d].1.contains(&cell.value_x),
                None => false,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_table::Table;

    fn frame_from(cols: &[&str], rows: &[&[&str]]) -> CellFrame {
        let mut d = Table::with_columns(cols);
        for r in rows {
            d.push_row_strs(r);
        }
        // Strategies only read value_x; a self-merge gives an all-clean frame.
        CellFrame::merge(&d, &d).unwrap()
    }

    #[test]
    fn frequency_outlier_flags_rare_value() {
        let rows: Vec<Vec<&str>> = (0..99)
            .map(|_| vec!["common"])
            .chain([vec!["rare"]])
            .collect();
        let refs: Vec<&[&str]> = rows.iter().map(|r| r.as_slice()).collect();
        let frame = frame_from(&["a"], &refs);
        let flags = FrequencyOutlier { max_rel_freq: 0.02 }.run(&frame);
        assert!(!flags[0]);
        assert!(flags[99]);
    }

    #[test]
    fn gaussian_outlier_flags_extreme_and_nonnumeric() {
        let mut rows: Vec<Vec<String>> = (0..50).map(|i| vec![format!("{}", 100 + i)]).collect();
        rows.push(vec!["9999".to_string()]);
        rows.push(vec!["BER".to_string()]);
        let str_rows: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let refs: Vec<&[&str]> = str_rows.iter().map(|r| r.as_slice()).collect();
        let frame = frame_from(&["n"], &refs);
        let flags = GaussianOutlier { z_threshold: 3.0 }.run(&frame);
        assert!(!flags[0]);
        assert!(flags[50], "extreme value should be flagged");
        assert!(flags[51], "non-numeric in numeric column should be flagged");
    }

    #[test]
    fn shape_generalization() {
        assert_eq!(shape_of("12.0 oz", false), "dd.d_aa");
        assert_eq!(shape_of("12.0 oz", true), "d.d_a");
        assert_eq!(shape_of("Rome", true), "a");
        assert_eq!(shape_of("", true), "");
    }

    #[test]
    fn pattern_shape_flags_odd_format() {
        let mut rows: Vec<Vec<&str>> = (0..60).map(|_| vec!["12.0"]).collect();
        rows.push(vec!["12.0 oz"]);
        let refs: Vec<&[&str]> = rows.iter().map(|r| r.as_slice()).collect();
        let frame = frame_from(&["ounces"], &refs);
        let flags = PatternShape {
            max_rel_freq: 0.05,
            collapse_runs: true,
        }
        .run(&frame);
        assert!(!flags[0]);
        assert!(flags[60]);
    }

    #[test]
    fn missing_marker_catches_all_spellings() {
        let frame = frame_from(
            &["a"],
            &[&["NaN"], &[""], &["null"], &["N/A"], &["-"], &["ok"]],
        );
        let flags = MissingMarker.run(&frame);
        assert_eq!(flags, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn fd_violation_flags_disagreement() {
        // city → state holds except one row.
        let mut rows: Vec<Vec<&str>> = Vec::new();
        for _ in 0..20 {
            rows.push(vec!["Rome", "IT"]);
            rows.push(vec!["Paris", "FR"]);
        }
        rows.push(vec!["Rome", "FR"]); // violation
        let refs: Vec<&[&str]> = rows.iter().map(|r| r.as_slice()).collect();
        let frame = frame_from(&["city", "state"], &refs);
        let flags = FdViolation { min_support: 0.95 }.run(&frame);
        let idx = frame.cell_index(40, 1);
        assert!(flags[idx], "the disagreeing state cell should be flagged");
        assert!(!flags[frame.cell_index(0, 1)]);
    }

    #[test]
    fn knowledge_base_flags_nonmember_in_domain_column() {
        let mut rows: Vec<Vec<&str>> = (0..20).map(|_| vec!["CA"]).collect();
        rows.push(vec!["BER"]);
        let refs: Vec<&[&str]> = rows.iter().map(|r| r.as_slice()).collect();
        let frame = frame_from(&["state"], &refs);
        let flags = KnowledgeBase::builtin().run(&frame);
        assert!(!flags[0]);
        assert!(flags[20]);
    }

    #[test]
    fn knowledge_base_ignores_free_text_columns() {
        let frame = frame_from(&["note"], &[&["hello"], &["world"]]);
        let flags = KnowledgeBase::builtin().run(&frame);
        assert!(flags.iter().all(|f| !f));
    }

    #[test]
    fn battery_runs_on_any_frame() {
        let frame = frame_from(&["a", "b"], &[&["1", "x"], &["2", "y"], &["3", "z"]]);
        for strategy in default_battery() {
            let flags = strategy.run(&frame);
            assert_eq!(flags.len(), 6, "{} returned wrong length", strategy.name());
        }
    }
}
