//! L2-regularized logistic regression trained with full-batch gradient
//! descent — the per-column classifier that generalizes propagated labels
//! to the whole column (the original Raha uses scikit-learn gradient
//! boosting; on ≤ a dozen binary features a regularized logistic model is
//! an equally expressive and dependency-free stand-in).

/// Binary logistic-regression classifier.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    weights: Vec<f32>,
    bias: f32,
    /// L2 penalty.
    pub l2: f32,
    /// Gradient-descent step size.
    pub lr: f32,
    /// Training iterations.
    pub iters: usize,
    /// Weight the positive class inversely to its prevalence — essential
    /// when errors are a few percent of cells, or the optimum collapses
    /// to "predict the majority class".
    pub balance_classes: bool,
}

impl LogisticRegression {
    /// New classifier over `n_features` inputs.
    pub fn new(n_features: usize) -> Self {
        Self {
            weights: vec![0.0; n_features],
            bias: 0.0,
            l2: 1e-3,
            lr: 0.5,
            iters: 300,
            balance_classes: false,
        }
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.weights.len()
    }

    /// Fit on rows `x` with binary targets `y` (`true` = positive class).
    ///
    /// # Panics
    /// If `x` and `y` lengths differ, or any row width mismatches.
    pub fn fit(&mut self, x: &[Vec<f32>], y: &[bool]) {
        assert_eq!(
            x.len(),
            y.len(),
            "LogisticRegression::fit: {} rows, {} labels",
            x.len(),
            y.len()
        );
        if x.is_empty() {
            return;
        }
        let d = self.weights.len();
        for row in x {
            assert_eq!(
                row.len(),
                d,
                "LogisticRegression::fit: row width {} != {d}",
                row.len()
            );
        }
        // Optional class re-weighting: each class contributes half of the
        // total gradient mass regardless of its prevalence.
        let n_pos = y.iter().filter(|&&l| l).count();
        let n_neg = y.len() - n_pos;
        let (w_pos, w_neg) = if self.balance_classes && n_pos > 0 && n_neg > 0 {
            let total = y.len() as f32;
            (total / (2.0 * n_pos as f32), total / (2.0 * n_neg as f32))
        } else {
            (1.0, 1.0)
        };
        let norm: f32 = y.iter().map(|&l| if l { w_pos } else { w_neg }).sum();
        for _ in 0..self.iters {
            let mut gw = vec![0.0f32; d];
            let mut gb = 0.0f32;
            for (row, &label) in x.iter().zip(y) {
                let p = self.predict_proba(row);
                let weight = if label { w_pos } else { w_neg };
                let err = weight * (p - if label { 1.0 } else { 0.0 });
                for (g, &xi) in gw.iter_mut().zip(row) {
                    *g += err * xi;
                }
                gb += err;
            }
            for (w, g) in self.weights.iter_mut().zip(&gw) {
                *w -= self.lr * (g / norm + self.l2 * *w);
            }
            self.bias -= self.lr * gb / norm;
        }
    }

    /// Probability of the positive class.
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        debug_assert_eq!(row.len(), self.weights.len());
        let z: f32 = self
            .weights
            .iter()
            .zip(row)
            .map(|(w, x)| w * x)
            .sum::<f32>()
            + self.bias;
        1.0 / (1.0 + (-z).exp())
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, row: &[f32]) -> bool {
        self.predict_proba(row) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_single_informative_feature() {
        let x: Vec<Vec<f32>> = (0..40)
            .map(|i| vec![if i % 2 == 0 { 1.0 } else { 0.0 }, 0.5])
            .collect();
        let y: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        let mut clf = LogisticRegression::new(2);
        clf.fit(&x, &y);
        assert!(clf.predict(&[1.0, 0.5]));
        assert!(!clf.predict(&[0.0, 0.5]));
    }

    #[test]
    fn learns_a_conjunction() {
        // Positive iff both features fire.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in [0.0f32, 1.0] {
            for b in [0.0f32, 1.0] {
                for _ in 0..10 {
                    x.push(vec![a, b]);
                    y.push(a == 1.0 && b == 1.0);
                }
            }
        }
        let mut clf = LogisticRegression::new(2);
        clf.fit(&x, &y);
        assert!(clf.predict(&[1.0, 1.0]));
        assert!(!clf.predict(&[1.0, 0.0]));
        assert!(!clf.predict(&[0.0, 1.0]));
        assert!(!clf.predict(&[0.0, 0.0]));
    }

    #[test]
    fn untrained_predicts_half() {
        let clf = LogisticRegression::new(3);
        assert!((clf.predict_proba(&[1.0, 1.0, 1.0]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_fit_is_a_noop() {
        let mut clf = LogisticRegression::new(2);
        clf.fit(&[], &[]);
        assert!((clf.predict_proba(&[0.0, 0.0]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn single_class_training_predicts_that_class() {
        let x: Vec<Vec<f32>> = (0..10).map(|_| vec![1.0]).collect();
        let y = vec![true; 10];
        let mut clf = LogisticRegression::new(1);
        clf.fit(&x, &y);
        assert!(clf.predict(&[1.0]));
    }
}

#[cfg(test)]
mod balance_tests {
    use super::*;

    #[test]
    fn balancing_rescues_minority_class() {
        // 3% positives, perfectly separable on one feature.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let pos = i % 33 == 0;
            x.push(vec![if pos { 1.0 } else { 0.0 }]);
            y.push(pos);
        }
        let mut balanced = LogisticRegression::new(1);
        balanced.balance_classes = true;
        balanced.fit(&x, &y);
        assert!(
            balanced.predict(&[1.0]),
            "balanced model must flag the minority pattern"
        );
        assert!(!balanced.predict(&[0.0]));
    }
}
