//! Per-column agglomerative clustering of cells by feature-vector
//! similarity — Raha's mechanism for propagating a handful of labels to
//! many cells.
//!
//! Cells with identical feature vectors are first collapsed into
//! *patterns* (there are only a handful of distinct strategy-agreement
//! patterns per column), and average-linkage agglomerative clustering
//! runs over the patterns, weighted by their cell counts. This keeps the
//! procedure exact while making it O(p²·log p) in the number of distinct
//! patterns rather than the number of cells.

use crate::features::FeatureMatrix;
use etsb_table::CellFrame;
use std::collections::HashMap;

/// Clustering of one column's cells.
#[derive(Clone, Debug)]
pub struct ColumnClustering {
    /// Cluster id of each tuple's cell in this column (`len == n_tuples`).
    pub assignment: Vec<usize>,
    /// Number of clusters.
    pub n_clusters: usize,
}

/// Cluster every column's cells into at most `k` clusters.
pub fn cluster_columns(
    frame: &CellFrame,
    features: &FeatureMatrix,
    k: usize,
) -> Vec<ColumnClustering> {
    assert!(k >= 1, "cluster_columns: k must be at least 1");
    (0..frame.n_attrs())
        .map(|attr| cluster_one_column(frame, features, attr, k))
        .collect()
}

fn cluster_one_column(
    frame: &CellFrame,
    features: &FeatureMatrix,
    attr: usize,
    k: usize,
) -> ColumnClustering {
    let n_tuples = frame.n_tuples();
    // Collapse identical feature vectors into patterns.
    let mut pattern_ids: HashMap<Vec<bool>, usize> = HashMap::new();
    let mut pattern_of_tuple = Vec::with_capacity(n_tuples);
    let mut patterns: Vec<Vec<bool>> = Vec::new();
    let mut weights: Vec<usize> = Vec::new();
    for t in 0..n_tuples {
        let cell = frame.cell_index(t, attr);
        let fv = features.row(cell).to_vec();
        let id = *pattern_ids.entry(fv.clone()).or_insert_with(|| {
            patterns.push(fv);
            weights.push(0);
            patterns.len() - 1
        });
        weights[id] += 1;
        pattern_of_tuple.push(id);
    }

    let p = patterns.len();
    if p <= k {
        // Every pattern is its own cluster.
        return ColumnClustering {
            assignment: pattern_of_tuple,
            n_clusters: p,
        };
    }

    // Agglomerative average linkage over patterns. `members[c]` lists the
    // pattern ids merged into cluster c; `None` marks absorbed clusters.
    let mut members: Vec<Option<Vec<usize>>> = (0..p).map(|i| Some(vec![i])).collect();
    let mut alive = p;

    let dist = |a: &[usize], b: &[usize]| -> f64 {
        let mut total = 0.0f64;
        let mut w = 0.0f64;
        for &i in a {
            for &j in b {
                let d = patterns[i]
                    .iter()
                    .zip(&patterns[j])
                    .filter(|(x, y)| x != y)
                    .count() as f64;
                let wij = (weights[i] * weights[j]) as f64;
                total += d * wij;
                w += wij;
            }
        }
        if w == 0.0 {
            0.0
        } else {
            total / w
        }
    };

    while alive > k {
        // Find the closest pair of live clusters.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..members.len() {
            let Some(mi) = &members[i] else { continue };
            for (j, slot) in members.iter().enumerate().skip(i + 1) {
                let Some(mj) = slot else { continue };
                let d = dist(mi, mj);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        // `alive > k >= 1` guarantees a closest pair exists; if the scan
        // ever comes up empty the clustering is already as coarse as it
        // can get, so stopping is the correct degradation.
        let Some((i, j, _)) = best else { break };
        let Some(mj) = members[j].take() else { break };
        if let Some(mi) = members[i].as_mut() {
            mi.extend(mj);
            alive -= 1;
        } else {
            members[j] = Some(mj); // unreachable: i was live in the scan
            break;
        }
    }

    // Renumber live clusters densely and map tuples through.
    let mut cluster_of_pattern = vec![usize::MAX; p];
    let mut next = 0usize;
    for m in members.iter().flatten() {
        for &pat in m {
            cluster_of_pattern[pat] = next;
        }
        next += 1;
    }
    let assignment = pattern_of_tuple
        .into_iter()
        .map(|pat| cluster_of_pattern[pat])
        .collect();
    ColumnClustering {
        assignment,
        n_clusters: next,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::build_features;
    use crate::strategies::{FrequencyOutlier, MissingMarker, Strategy};
    use etsb_table::Table;

    fn setup() -> (CellFrame, FeatureMatrix) {
        let mut d = Table::with_columns(&["a"]);
        for _ in 0..40 {
            d.push_row_strs(&["common"]);
        }
        for _ in 0..2 {
            d.push_row_strs(&["NaN"]);
        }
        for _ in 0..2 {
            d.push_row_strs(&["weird"]);
        }
        let frame = CellFrame::merge(&d, &d).unwrap();
        let battery: Vec<Box<dyn Strategy>> = vec![
            Box::new(FrequencyOutlier { max_rel_freq: 0.05 }),
            Box::new(FrequencyOutlier { max_rel_freq: 0.10 }),
            Box::new(MissingMarker),
        ];
        let fm = build_features(&frame, &battery);
        (frame, fm)
    }

    #[test]
    fn identical_patterns_share_a_cluster() {
        let (frame, fm) = setup();
        let clusterings = cluster_columns(&frame, &fm, 3);
        let c = &clusterings[0];
        // All "common" cells identical → same cluster.
        assert!(c.assignment[..40].iter().all(|&x| x == c.assignment[0]));
        // All "NaN" cells identical → same cluster, different from common.
        assert_eq!(c.assignment[40], c.assignment[41]);
        assert_ne!(c.assignment[0], c.assignment[40]);
    }

    #[test]
    fn k_limits_cluster_count() {
        let (frame, fm) = setup();
        for k in 1..=4 {
            let c = &cluster_columns(&frame, &fm, k)[0];
            assert!(
                c.n_clusters <= k,
                "k={k} produced {} clusters",
                c.n_clusters
            );
            assert!(c.assignment.iter().all(|&a| a < c.n_clusters));
        }
    }

    #[test]
    fn merge_prefers_similar_patterns() {
        let (frame, fm) = setup();
        // With k=2 the NaN cells (which share the frequency-outlier flags
        // with "weird") should merge with "weird", not with "common".
        let c = &cluster_columns(&frame, &fm, 2)[0];
        assert_eq!(c.assignment[40], c.assignment[42]);
        assert_ne!(c.assignment[0], c.assignment[40]);
    }

    #[test]
    fn every_column_gets_a_clustering() {
        let mut d = Table::with_columns(&["a", "b", "c"]);
        for i in 0..20 {
            d.push_row(vec![format!("{i}"), "x".into(), "y".into()]);
        }
        let frame = CellFrame::merge(&d, &d).unwrap();
        let battery: Vec<Box<dyn Strategy>> = vec![Box::new(MissingMarker)];
        let fm = build_features(&frame, &battery);
        let clusterings = cluster_columns(&frame, &fm, 5);
        assert_eq!(clusterings.len(), 3);
        for c in &clusterings {
            assert_eq!(c.assignment.len(), 20);
        }
    }
}
