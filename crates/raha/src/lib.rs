//! # etsb-raha
//!
//! A Raha-style configuration-free error-detection baseline
//! (Mahdavi et al., SIGMOD 2019), reimplemented from scratch as the
//! comparison system the ETSB-RNN paper evaluates against and as the
//! engine behind the paper's Algorithm 2 (`RahaSet`) label sampler.
//!
//! The pipeline follows the original's structure:
//!
//! 1. **Strategies** ([`strategies`]) — a battery of cheap detectors is
//!    run over every cell: frequency outliers (dBoost-style), Gaussian
//!    numeric outliers, pattern/shape violations (Wrangler-style),
//!    rare-character detectors, approximate functional-dependency
//!    violations (NADEEF-style) and domain-dictionary lookups
//!    (KATARA-style; DBpedia replaced by builtin dictionaries — see
//!    DESIGN.md §5).
//! 2. **Feature vectors** ([`features`]) — each cell's strategy outputs
//!    form a binary feature vector.
//! 3. **Clustering** ([`cluster`]) — cells of each column are clustered
//!    by feature-vector similarity (agglomerative, average linkage).
//! 4. **Sampling & propagation** ([`detector`]) — tuples covering many
//!    unlabeled clusters are proposed to the user; labels propagate to
//!    cluster members; a per-column logistic-regression classifier
//!    ([`classifier`]) generalizes to the rest.

#![warn(missing_docs)]

mod classifier;
mod cluster;
mod detector;
mod features;

pub mod strategies;

pub use classifier::LogisticRegression;
pub use cluster::{cluster_columns, ColumnClustering};
pub use detector::{RahaConfig, RahaDetector, RahaModel};
pub use features::{build_features, FeatureMatrix};
