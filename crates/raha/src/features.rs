//! Per-cell feature vectors from strategy outputs.

use crate::strategies::Strategy;
use etsb_table::CellFrame;

/// Binary feature matrix: one row per cell (in `frame.cells()` order),
/// one column per strategy.
#[derive(Clone, Debug)]
pub struct FeatureMatrix {
    /// Strategy names, in column order.
    pub strategy_names: Vec<String>,
    n_features: usize,
    rows: Vec<Vec<bool>>,
}

impl FeatureMatrix {
    /// Number of cells.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of strategies.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Feature vector of one cell.
    pub fn row(&self, cell: usize) -> &[bool] {
        &self.rows[cell]
    }

    /// Feature vector as f32 (for the classifier).
    pub fn row_f32(&self, cell: usize) -> Vec<f32> {
        self.rows[cell]
            .iter()
            .map(|&b| if b { 1.0 } else { 0.0 })
            .collect()
    }

    /// Hamming distance between two cells' feature vectors.
    pub fn hamming(&self, a: usize, b: usize) -> usize {
        self.rows[a]
            .iter()
            .zip(&self.rows[b])
            .filter(|(x, y)| x != y)
            .count()
    }

    /// Number of strategies suspecting a cell.
    pub fn votes(&self, cell: usize) -> usize {
        self.rows[cell].iter().filter(|&&b| b).count()
    }
}

/// Run every strategy over the frame and assemble the feature matrix.
pub fn build_features(frame: &CellFrame, battery: &[Box<dyn Strategy>]) -> FeatureMatrix {
    let n_cells = frame.cells().len();
    let mut rows = vec![Vec::with_capacity(battery.len()); n_cells];
    let mut names = Vec::with_capacity(battery.len());
    for strategy in battery {
        names.push(strategy.name());
        let flags = strategy.run(frame);
        assert_eq!(
            flags.len(),
            n_cells,
            "strategy {} returned {} flags for {} cells",
            strategy.name(),
            flags.len(),
            n_cells
        );
        for (row, flag) in rows.iter_mut().zip(flags) {
            row.push(flag);
        }
    }
    FeatureMatrix {
        strategy_names: names,
        n_features: battery.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{FrequencyOutlier, MissingMarker};
    use etsb_table::Table;

    fn small_frame() -> CellFrame {
        let mut d = Table::with_columns(&["a"]);
        for _ in 0..30 {
            d.push_row_strs(&["common"]);
        }
        d.push_row_strs(&["NaN"]);
        CellFrame::merge(&d, &d).unwrap()
    }

    #[test]
    fn features_align_with_strategies() {
        let frame = small_frame();
        let battery: Vec<Box<dyn Strategy>> = vec![
            Box::new(FrequencyOutlier { max_rel_freq: 0.05 }),
            Box::new(MissingMarker),
        ];
        let fm = build_features(&frame, &battery);
        assert_eq!(fm.n_rows(), 31);
        assert_eq!(fm.n_features(), 2);
        assert_eq!(fm.row(0), &[false, false]);
        assert_eq!(fm.row(30), &[true, true]);
        assert_eq!(fm.votes(30), 2);
        assert_eq!(fm.hamming(0, 30), 2);
        assert_eq!(fm.row_f32(30), vec![1.0, 1.0]);
    }
}
